// Package battery closes the loop between the cost model and the fault
// model: every node carries a finite energy budget, every cost.Ledger
// charge drains it, and the charge that crosses the budget fail-stops the
// node at the precise simulated time of the depleting operation. Where the
// fault package injects crashes as *inputs* (externally scheduled), the
// battery makes death an *output* of the system's own behavior — ARQ
// retransmissions, collective traffic, and leader duties all spend real
// energy, so the paper's lifetime and energy-balance metrics (Section 2)
// become emergent, measurable properties instead of post-hoc
// extrapolations from one round's ledger.
//
// Mechanically a Bank implements cost.Meter. Attach it with
// Ledger.SetMeter and it observes every Charge before the charge lands:
//
//   - a charge to a live node is granted and accumulated; if the node's
//     cumulative drain then exceeds its capacity, the node is declared
//     depleted and the OnDeplete callback fires synchronously — inside the
//     charging event, so the death is ordered at exactly the depleting
//     operation's simulated time. The depleting charge itself is granted
//     (the "dying gasp"): the operation that exhausted the battery
//     completes, and only subsequent activity is silenced.
//
//   - a charge to a depleted node is vetoed: Charge records nothing and
//     returns 0. A dead radio neither transmits nor receives, so the
//     ledger never moves again for that node — the dead-nodes-are-never-
//     charged invariant the property tests pin.
//
// Everything is deterministic: capacities are fixed or seed-derived, and
// depletion order is a pure function of the charge sequence.
package battery

import (
	"fmt"
	"math/rand"
	"strconv"

	"wsnva/internal/cost"
	"wsnva/internal/sim"
	"wsnva/internal/trace"
)

// Unlimited is an effectively infinite capacity: no realistic simulation
// accumulates half of int64 energy units. A bank whose every node holds
// Unlimited never kills anyone, which is what the infinite-budget identity
// property exercises.
const Unlimited = cost.Energy(1) << 62

// Bank tracks one battery per node. It implements cost.Meter.
type Bank struct {
	capacity []cost.Energy
	drained  []cost.Energy
	dead     []bool
	deaths   int
	// onDeplete, if set, fires synchronously the moment a node's drain
	// crosses its capacity — after the crossing charge is granted, before
	// Absorb returns. The callback typically routes to fault.Injector.Fail
	// (or directly to a Kill target plus CancelOwner) and must not charge
	// the ledger the bank is metering.
	onDeplete func(node int)
	tracer    *trace.Tracer
	clock     func() sim.Time

	// Instant-granularity dying-gasp mode (see Gasp): a depleted node
	// keeps absorbing charges stamped at its depletion instant, and the
	// veto starts only at the next time step. graceUntil[node] is the
	// depletion instant, -1 while the node is up.
	gaspClock  func() sim.Time
	graceUntil []sim.Time
}

// SetTracer attaches an observability tracer (nil detaches): each
// depletion emits a trace.Deplete event carrying the node's total drain in
// Bytes, stamped with clock's time (nil clock stamps 0). The event is
// emitted before OnDeplete fires, so in a trace the order at the death
// instant reads Deplete, then the fault layer's Death, then the dying
// gasp's Charge.
func (b *Bank) SetTracer(t *trace.Tracer, clock func() sim.Time) {
	b.tracer = t
	b.clock = clock
}

// Uniform returns a bank giving every one of n nodes the same capacity.
func Uniform(n int, capacity cost.Energy) *Bank {
	if n <= 0 {
		panic(fmt.Sprintf("battery: bank needs positive node count, got %d", n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("battery: negative capacity %d", capacity))
	}
	caps := make([]cost.Energy, n)
	for i := range caps {
		caps[i] = capacity
	}
	return fromCaps(caps)
}

// Heterogeneous returns a bank with per-node capacities drawn uniformly
// from [lo, hi], seed-derived — the mixed-provisioning deployments the WSN
// literature studies, deterministic per seed.
func Heterogeneous(n int, lo, hi cost.Energy, seed int64) *Bank {
	if n <= 0 {
		panic(fmt.Sprintf("battery: bank needs positive node count, got %d", n))
	}
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("battery: bad capacity range [%d, %d]", lo, hi))
	}
	rng := rand.New(rand.NewSource(seed))
	caps := make([]cost.Energy, n)
	for i := range caps {
		caps[i] = lo + cost.Energy(rng.Int63n(int64(hi-lo)+1))
	}
	return fromCaps(caps)
}

// FromCapacities returns a bank over an explicit capacity vector.
func FromCapacities(caps []cost.Energy) *Bank {
	if len(caps) == 0 {
		panic("battery: empty capacity vector")
	}
	for i, c := range caps {
		if c < 0 {
			panic(fmt.Sprintf("battery: negative capacity %d for node %d", c, i))
		}
	}
	return fromCaps(append([]cost.Energy(nil), caps...))
}

func fromCaps(caps []cost.Energy) *Bank {
	return &Bank{
		capacity: caps,
		drained:  make([]cost.Energy, len(caps)),
		dead:     make([]bool, len(caps)),
	}
}

// OnDeplete installs the depletion callback (nil disables). It fires at
// most once per node, synchronously inside the depleting charge.
func (b *Bank) OnDeplete(f func(node int)) { b.onDeplete = f }

// Gasp switches the bank to instant-granularity dying-gasp semantics,
// clocked by clock: a node whose drain crosses capacity at instant t
// still absorbs every further charge stamped t (the whole instant is the
// dying gasp), and the veto begins at t+1. OnDeplete still fires exactly
// once, at the crossing.
//
// This is the mode the sharded kernel needs. Charges landing at one
// simulated instant carry no defined order between a sharded engine and
// a single kernel, so the per-charge gasp (exactly one granted overshoot)
// would make the granted set depend on intra-instant scheduling; granting
// the whole instant is order-independent. For the same reason the Deplete
// trace event in this mode reports the node's capacity in Bytes rather
// than the (order-dependent) drain at the crossing.
func (b *Bank) Gasp(clock func() sim.Time) {
	if clock == nil {
		panic("battery: Gasp needs a clock")
	}
	b.gaspClock = clock
	b.graceUntil = make([]sim.Time, len(b.capacity))
	for i := range b.graceUntil {
		b.graceUntil[i] = -1
	}
}

// Absorb implements cost.Meter: veto charges to depleted nodes, grant and
// accumulate everything else, and fail-stop a node the instant its drain
// exceeds capacity.
func (b *Bank) Absorb(node int, _ cost.Op, e cost.Energy) bool {
	if b.dead[node] {
		// In gasp mode the depletion instant itself is still granted:
		// every charge stamped at graceUntil[node] accrues, the veto
		// starts at the next time step.
		if b.gaspClock != nil && b.graceUntil[node] >= 0 && b.gaspClock() <= b.graceUntil[node] {
			b.drained[node] += e
			return true
		}
		return false
	}
	if e == 0 {
		return true
	}
	b.drained[node] += e
	if b.drained[node] > b.capacity[node] {
		b.dead[node] = true
		b.deaths++
		reported := int64(b.drained[node])
		if b.gaspClock != nil {
			b.graceUntil[node] = b.gaspClock()
			reported = int64(b.capacity[node])
		}
		if b.tracer != nil {
			var at sim.Time
			if b.clock != nil {
				at = b.clock()
			}
			b.tracer.EmitEvent(trace.Event{At: at, Kind: trace.Deplete,
				Node: "#" + strconv.Itoa(node), ID: node,
				Col: -1, Row: -1, PeerCol: -1, PeerRow: -1,
				Bytes: reported, Detail: "battery exhausted"})
		}
		if b.onDeplete != nil {
			b.onDeplete(node)
		}
	}
	return true
}

// N returns the number of nodes the bank tracks.
func (b *Bank) N() int { return len(b.capacity) }

// Capacity returns node's budget.
func (b *Bank) Capacity(node int) cost.Energy { return b.capacity[node] }

// Drained returns node's cumulative granted charge. For a depleted node it
// is frozen at the value that killed it (capacity plus the dying gasp's
// overshoot).
func (b *Bank) Drained(node int) cost.Energy { return b.drained[node] }

// Residual returns node's remaining budget (never negative).
func (b *Bank) Residual(node int) cost.Energy {
	if r := b.capacity[node] - b.drained[node]; r > 0 {
		return r
	}
	return 0
}

// Depleted reports whether node's battery is exhausted.
func (b *Bank) Depleted(node int) bool { return b.dead[node] }

// Deaths returns how many nodes have depleted so far.
func (b *Bank) Deaths() int { return b.deaths }
