package battery

import (
	"testing"

	"wsnva/internal/cost"
)

// TestConstructors covers the three bank builders and their rejection
// edges.
func TestConstructors(t *testing.T) {
	b := Uniform(4, 100)
	if b.N() != 4 {
		t.Fatalf("N = %d, want 4", b.N())
	}
	for i := 0; i < 4; i++ {
		if b.Capacity(i) != 100 || b.Drained(i) != 0 || b.Residual(i) != 100 || b.Depleted(i) {
			t.Errorf("node %d: fresh bank in wrong state", i)
		}
	}

	h1 := Heterogeneous(32, 50, 150, 7)
	h2 := Heterogeneous(32, 50, 150, 7)
	varied := false
	for i := 0; i < 32; i++ {
		c := h1.Capacity(i)
		if c < 50 || c > 150 {
			t.Errorf("node %d capacity %d outside [50, 150]", i, c)
		}
		if c != h2.Capacity(i) {
			t.Errorf("node %d: same seed gave %d vs %d", i, c, h2.Capacity(i))
		}
		if c != h1.Capacity(0) {
			varied = true
		}
	}
	if !varied {
		t.Error("heterogeneous capacities all identical")
	}

	caps := []cost.Energy{10, 20, 30}
	f := FromCapacities(caps)
	caps[1] = 999 // the bank must hold its own copy
	if f.Capacity(1) != 20 {
		t.Errorf("FromCapacities aliased the caller's slice")
	}

	for name, fn := range map[string]func(){
		"zero n":             func() { Uniform(0, 10) },
		"negative capacity":  func() { Uniform(3, -1) },
		"bad range":          func() { Heterogeneous(3, 100, 50, 1) },
		"empty vector":       func() { FromCapacities(nil) },
		"negative in vector": func() { FromCapacities([]cost.Energy{5, -2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: accepted", name)
				}
			}()
			fn()
		}()
	}
}

// TestDyingGasp: the charge that crosses the budget is granted in full, the
// node dies inside that charge (callback fires synchronously), and every
// later charge is vetoed with the drain frozen.
func TestDyingGasp(t *testing.T) {
	b := Uniform(2, 100)
	var died []int
	b.OnDeplete(func(node int) { died = append(died, node) })

	if !b.Absorb(0, cost.Tx, 100) {
		t.Fatal("charge to exactly the capacity vetoed")
	}
	if b.Depleted(0) || len(died) != 0 {
		t.Fatal("node died at drain == capacity; depletion must be strict")
	}
	if !b.Absorb(0, cost.Tx, 7) {
		t.Fatal("the depleting charge must be granted (dying gasp)")
	}
	if !b.Depleted(0) || b.Deaths() != 1 || len(died) != 1 || died[0] != 0 {
		t.Fatalf("depletion not recorded: deaths=%d died=%v", b.Deaths(), died)
	}
	if b.Drained(0) != 107 {
		t.Errorf("drain %d, want 107 (capacity plus overshoot)", b.Drained(0))
	}
	if b.Residual(0) != 0 {
		t.Errorf("residual %d for a depleted node, want 0", b.Residual(0))
	}

	if b.Absorb(0, cost.Rx, 1) {
		t.Error("charge to a depleted node granted")
	}
	if b.Drained(0) != 107 {
		t.Errorf("dead node's drain moved to %d", b.Drained(0))
	}
	if b.Deaths() != 1 || len(died) != 1 {
		t.Error("second depletion recorded for the same node")
	}
	if b.Depleted(1) || b.Drained(1) != 0 {
		t.Error("node 1 affected by node 0's depletion")
	}
}

// TestZeroCharges: zero-energy charges are granted but never deplete
// anyone, even at zero capacity.
func TestZeroCharges(t *testing.T) {
	b := Uniform(1, 0)
	if !b.Absorb(0, cost.Idle, 0) {
		t.Error("zero charge vetoed")
	}
	if b.Depleted(0) {
		t.Error("zero charge depleted a zero-capacity node")
	}
	if !b.Absorb(0, cost.Tx, 1) || !b.Depleted(0) {
		t.Error("first real charge to a zero-capacity node must be the dying gasp")
	}
}

// TestUnlimited: the infinite-capacity sentinel absorbs a large workload
// without a single death.
func TestUnlimited(t *testing.T) {
	b := Uniform(1, Unlimited)
	for i := 0; i < 1000; i++ {
		if !b.Absorb(0, cost.Tx, 1<<40) {
			t.Fatal("unlimited bank vetoed a charge")
		}
	}
	if b.Deaths() != 0 {
		t.Fatal("unlimited bank recorded a death")
	}
}

// TestLedgerMeterIntegration wires a Bank into a real Ledger: granted
// charges land, vetoed charges return 0 and record nothing, and a nil
// meter restores the plain path.
func TestLedgerMeterIntegration(t *testing.T) {
	l := cost.NewLedger(cost.NewUniform(), 2)
	b := Uniform(2, 10)
	l.SetMeter(b)

	if e := l.Charge(0, cost.Tx, 10); e != 10 {
		t.Fatalf("granted charge returned %d, want 10", e)
	}
	if e := l.Charge(0, cost.Tx, 5); e != 5 {
		t.Fatalf("dying gasp returned %d, want 5", e)
	}
	preOps := l.Units(cost.Tx)
	if e := l.Charge(0, cost.Tx, 3); e != 0 {
		t.Fatalf("post-death charge returned %d, want 0", e)
	}
	if l.Energy(0) != 15 {
		t.Errorf("ledger energy %d, want 15 (vetoed charge must not land)", l.Energy(0))
	}
	if l.Units(cost.Tx) != preOps {
		t.Error("vetoed charge still counted its op units")
	}
	if l.Energy(0) != cost.Energy(b.Drained(0)) {
		t.Errorf("ledger %d and bank %d disagree", l.Energy(0), b.Drained(0))
	}

	l.SetMeter(nil)
	if e := l.Charge(0, cost.Tx, 2); e != 2 {
		t.Errorf("detached ledger vetoed a charge (returned %d)", e)
	}
}
