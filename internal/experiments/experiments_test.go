package experiments

import (
	"strings"
	"testing"
)

// All experiment tables must build without panicking, contain data rows,
// and carry the claim-bearing columns. Shape assertions about the numbers
// live here too, so a regression in any substrate breaks this suite, not
// just the printed report.

func TestE1MappingTable(t *testing.T) {
	tab := E1Mapping(Options{})
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3 levels", tab.NumRows())
	}
	out := tab.String()
	// The paper's quoted placements must appear verbatim.
	if !strings.Contains(out, "0,4,8,12") {
		t.Errorf("level-1 placements missing:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Errorf("a constraint check failed:\n%s", out)
	}
}

func TestE2StepsTable(t *testing.T) {
	tab := E2Steps(Options{Quick: true})
	if tab.NumRows() < 2 {
		t.Fatal("need at least 2 sizes")
	}
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("engine disagreement:\n%s", out)
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3DCvsCentral(Options{Quick: true})
	out := tab.String()
	if !strings.Contains(out, "d&c") {
		t.Errorf("expected d&c to win somewhere:\n%s", out)
	}
}

func TestE4Table(t *testing.T) {
	tab := E4Balance(Options{Quick: true})
	if tab.NumRows() < 2 {
		t.Fatal("too few rows")
	}
}

func TestE5Table(t *testing.T) {
	tab := E5Emulation(Options{Quick: true})
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("emulation incomplete in some row:\n%s", out)
	}
}

func TestE6Table(t *testing.T) {
	tab := E6Election(Options{Quick: true})
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("election incorrect in some row:\n%s", out)
	}
}

func TestE7Table(t *testing.T) {
	tab := E7Loss(Options{Quick: true})
	// 6 loss points x {0,3} retries, minus the skipped loss-0/retries-3 row.
	if tab.NumRows() != 11 {
		t.Fatalf("rows = %d, want 11", tab.NumRows())
	}
}

func TestE11Table(t *testing.T) {
	tab := E11SyncSteps(Options{Quick: true})
	if tab.NumRows() < 2 {
		t.Fatal("too few rows")
	}
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("lockstep energy diverged from DES:\n%s", out)
	}
}

func TestE8Table(t *testing.T) {
	tab := E8Correspondence(Options{Quick: true})
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want one per level of the 4x4 grid", tab.NumRows())
	}
	out := tab.String()
	// Correlation column must be near 1; spot-check no negative signs in
	// the correlation column by rendering and scanning for "-0." or "-1".
	if strings.Contains(out, "-0.") || strings.Contains(out, "-1") {
		t.Errorf("suspicious negative correlation:\n%s", out)
	}
}

func TestE9Table(t *testing.T) {
	tab := E9Collectives(Options{Quick: true})
	if tab.NumRows() == 0 {
		t.Fatal("empty table")
	}
}

func TestE10Table(t *testing.T) {
	tab := E10Churn(Options{Quick: true})
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("repair left the emulation incomplete:\n%s", out)
	}
}

func TestE12Table(t *testing.T) {
	tab := E12TreeTopology(Options{Quick: true})
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 in quick mode", tab.NumRows())
	}
}

func TestE13Table(t *testing.T) {
	tab := E13LossyEmulation(Options{Quick: true})
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 in quick mode", tab.NumRows())
	}
	out := tab.String()
	// Loss-free row must complete on the first run.
	if !strings.Contains(out, "true") {
		t.Errorf("loss-free emulation should complete immediately:\n%s", out)
	}
}

func TestE14Table(t *testing.T) {
	tab := E14AlarmApp(Options{Quick: true})
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6 fire sizes", tab.NumRows())
	}
	out := tab.String()
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Errorf("sweep should include raised and unraised rows:\n%s", out)
	}
}

func TestAblationTables(t *testing.T) {
	a1 := A1MappingAblation(Options{Quick: true})
	if a1.NumRows() == 0 {
		t.Fatal("A1 empty")
	}
	a2 := A2FieldShapes(Options{Quick: true})
	if a2.NumRows() != 5 {
		t.Fatalf("A2 rows = %d, want 5 workloads", a2.NumRows())
	}
}

func TestA3Table(t *testing.T) {
	tab := A3CostSensitivity(Options{Quick: true})
	if tab.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5 profiles", tab.NumRows())
	}
	if strings.Contains(tab.String(), "central\n") {
		t.Errorf("D&C should win under every profile at this size:\n%s", tab.String())
	}
}

func TestE15Table(t *testing.T) {
	tab := E15Lifetime(Options{Quick: true})
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tab.NumRows())
	}
}

func TestE16Table(t *testing.T) {
	tab := E16WholeApp(Options{Quick: true})
	if tab.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1 in quick mode", tab.NumRows())
	}
	if strings.Contains(tab.String(), "false") {
		t.Errorf("physical and virtual runs must agree:\n%s", tab.String())
	}
}

// TestE22Table pins the hazard scaling sweep's correctness column: every
// (hazard, shards, workers) cell must reproduce its scenario oracle's
// checksum, and the hazard machinery must actually bite (lossy scenarios
// drop packets, the crash+deplete scenario kills nodes).
func TestE22Table(t *testing.T) {
	tab := E22HazardScaling(Options{Quick: true})
	if tab.NumRows() != 6 { // 1 grid x 3 hazard scenarios x 2 configs
		t.Fatalf("rows = %d, want 6", tab.NumRows())
	}
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("a sharded hazard run diverged from its oracle:\n%s", out)
	}
	for _, hazard := range []string{"bernoulli", "burst", "crash+deplete"} {
		if !strings.Contains(out, hazard) {
			t.Errorf("scenario %q missing:\n%s", hazard, out)
		}
	}
}

// TestE26Table pins the deployment-scaling sweep's correctness column:
// every parallel build and parallel generation must deep-equal its
// sequential twin (the wall columns are process measurements and are not
// asserted).
func TestE26Table(t *testing.T) {
	tab := E26DeployGeneration(Options{Quick: true})
	if tab.NumRows() != 6 { // 2 build tiers x 2 modes + 1 gen tier x 2 modes
		t.Fatalf("rows = %d, want 6", tab.NumRows())
	}
	if out := tab.String(); strings.Contains(out, "false") {
		t.Errorf("a parallel deployment diverged from its sequential twin:\n%s", out)
	}
}
