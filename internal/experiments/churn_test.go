package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestE23GoldenCSV pins the churn repair sweep byte-for-byte against a
// committed golden file: disturbance schedules, repair traffic, and
// re-convergence latencies are pure functions of the seeds, so the quick
// table must never drift. Regenerate deliberately with
// UPDATE_GOLDEN=1 go test ./internal/experiments after an intentional
// behavior change.
func TestE23GoldenCSV(t *testing.T) {
	got := E23ChurnRepair(Options{Quick: true}).CSV()
	path := filepath.Join("testdata", "e23_quick.golden.csv")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("E23 quick CSV drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestE23Recovered checks the sweep's headline property directly: the
// recovery predicate holds and the final round covers the full grid at
// every churn rate in the quick sweep.
func TestE23Recovered(t *testing.T) {
	tab := E23ChurnRepair(Options{Quick: true})
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("a churn mission failed to recover or to cover the grid:\n%s", out)
	}
}

// TestE23ProportionalRepair pins the tentpole's cost claim on the full
// sweep: quadrupling the network (side 4 → side 8, same density) must
// not quadruple the per-flip repair cost — repair traffic tracks the
// disturbance, not the network. The bound of 2 is loose (observed ~1.2×,
// from the extra teachers a denser neighborhood contributes) but rules
// out any repair that re-floods the whole grid.
func TestE23ProportionalRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	tab := E23ChurnRepair(Options{})
	perFlip := map[string]float64{}
	for _, row := range tab.Rows() {
		if row[2] != "0.200" {
			continue
		}
		v, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("msgs/flip cell %q: %v", row[7], err)
		}
		perFlip[row[0]] = v
	}
	small, large := perFlip["4"], perFlip["8"]
	if small <= 0 || large <= 0 {
		t.Fatalf("missing rate-0.2 rows: %v", perFlip)
	}
	if large > 2*small {
		t.Errorf("per-flip repair cost scaled with network size: side 4 = %.2f, side 8 = %.2f", small, large)
	}
}

// TestE24Table pins the churned scaling sweep's correctness column:
// every (scenario, shards, workers) cell must reproduce its scenario
// oracle's checksum, and the churn machinery must actually bite
// (nonzero suspends in every scenario).
func TestE24Table(t *testing.T) {
	tab := E24ChurnShardScaling(Options{Quick: true})
	if tab.NumRows() != 4 { // 1 grid x 2 scenarios x 2 configs
		t.Fatalf("rows = %d, want 4", tab.NumRows())
	}
	out := tab.String()
	if strings.Contains(out, "false") {
		t.Errorf("a sharded churn run diverged from its oracle:\n%s", out)
	}
	for _, scenario := range []string{"poisson", "churn+loss+crash"} {
		if !strings.Contains(out, scenario) {
			t.Errorf("scenario %q missing:\n%s", scenario, out)
		}
	}
}
