package experiments

import (
	"fmt"
	"math/rand"

	"wsnva/internal/baseline"
	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/mapping"
	"wsnva/internal/sim"
	"wsnva/internal/stats"
	"wsnva/internal/synth"
	"wsnva/internal/taskgraph"
	"wsnva/internal/varch"
)

// A1MappingAblation is the mapper ablation DESIGN.md calls out: the paper's
// quadrant-recursive mapping against the centroid variant, random interior
// placement, and local search started from random — evaluated analytically
// on one round of the quad-tree (Section 4.2's role-assignment comparison).
func A1MappingAblation(o Options) *stats.Table {
	tab := stats.NewTable("A1: mapper ablation (one quad-tree round, analytical)",
		"side", "mapper", "total energy", "latency", "max node energy", "balance")
	model := cost.NewUniform()
	ss := sides(o, 8, 16, 32)
	sweep(o, tab, len(ss), func(i int) rows {
		side := ss[i]
		tree := taskgraph.QuadTree(geom.Log2(side), 1)
		grid := geom.NewSquareGrid(side, float64(side))
		// The random and local-search mappers share one RNG sequence per
		// side, so the side is the task unit and the mappers stay inner.
		rng := rand.New(rand.NewSource(71))
		random := mapping.RandomMapping(tree, grid, rng)
		mappers := []struct {
			name string
			a    *mapping.Assignment
		}{
			{"paper", mapping.PaperMapping(tree, grid)},
			{"centroid", mapping.CentroidMapping(tree, grid)},
			{"random", random},
			{"random+ls", mapping.LocalSearch(tree, random, model, 8)},
		}
		var out rows
		for _, m := range mappers {
			st := mapping.Evaluate(tree, m.a, model)
			out = append(out, []any{side, m.name, int64(st.TotalEnergy), int64(st.Latency),
				int64(st.MaxNodeEnergy), st.Balance})
		}
		return out
	})
	return tab
}

// A2FieldShapes measures how the workload's region structure drives the
// divide-and-conquer algorithm's cost: boundary-heavy fields (stripes)
// versus compact blobs versus solid coverage, at a fixed grid size. This is
// the data-dependence the paper's data-driven-computation discussion
// (Section 1) predicts.
func A2FieldShapes(o Options) *stats.Table {
	side := 16
	if o.Quick {
		side = 8
	}
	g := geom.NewSquareGrid(side, float64(side))
	workloads := []struct {
		name string
		m    *field.BinaryMap
	}{
		{"empty", field.Threshold(field.Constant{Value: 0}, g, 0.5, 0)},
		{"blobs", blobMapFor(side, 101)},
		{"gradient", field.Threshold(field.Gradient{DX: 1}, g, float64(side)/2, 0)},
		{"stripes", field.Threshold(field.Stripes{Width: 2, High: 1}, g, 0.5, 0)},
		{"solid", field.Threshold(field.Constant{Value: 1}, g, 0.5, 0)},
	}
	tab := stats.NewTable("A2: workload shape vs divide-and-conquer cost",
		"field", "feature cells", "regions", "dc energy", "dc latency", "root summary units")
	sweep(o, tab, len(workloads), func(i int) rows {
		w := workloads[i]
		res, l := runDES(w.m, o.Trace)
		return rows{{w.name, w.m.Count(), res.Final.Count(),
			int64(l.Metrics().Total), int64(res.Completion), res.Final.Size()}}
	})
	return tab
}

// A3CostSensitivity exercises the Section 3.2 escape hatch — "a different
// set of cost functions can be used if the characteristics of the
// deployment necessitate it" — by re-running the E3 comparison under
// radios with different energy profiles. The D&C-vs-centralized energy
// ratio must survive every profile (the decision is structural, driven by
// data volume × distance), while absolute numbers shift.
func A3CostSensitivity(o Options) *stats.Table {
	side := 16
	if o.Quick {
		side = 8
	}
	profiles := []struct {
		name  string
		model func() *cost.Model
	}{
		{"uniform (paper)", cost.NewUniform},
		{"tx-heavy 3:1", func() *cost.Model {
			m := cost.NewUniform()
			m.EnergyPerUnit[cost.Tx] = 3
			return m
		}},
		{"rx-heavy 1:2", func() *cost.Model {
			m := cost.NewUniform()
			m.EnergyPerUnit[cost.Rx] = 2
			return m
		}},
		{"cheap compute", func() *cost.Model {
			m := cost.NewUniform()
			m.EnergyPerUnit[cost.Compute] = 0
			m.ProcSpeed = 8
			return m
		}},
		{"slow radio b=4", func() *cost.Model {
			m := cost.NewUniform()
			m.Bandwidth = 4 // 4 units per latency tick: faster transfers
			return m
		}},
	}
	tab := stats.NewTable(fmt.Sprintf("A3: cost-model sensitivity (%dx%d grid, blob workload)", side, side),
		"profile", "dc energy", "central energy", "energy ratio", "dc latency", "central latency", "winner")
	sweep(o, tab, len(profiles), func(i int) rows {
		p := profiles[i]
		m := blobMapFor(side, 101)
		model := p.model()
		if err := model.Validate(); err != nil {
			panic(err)
		}
		h := varch.MustHierarchy(m.Grid)
		lDC := cost.NewLedger(model, m.Grid.N())
		vm := varch.NewMachine(h, sim.New(), lDC)
		resDC, err := synth.RunOnMachine(vm, m)
		if err != nil {
			panic(err)
		}
		lBase := cost.NewLedger(model, m.Grid.N())
		_, st := baseline.Run(lBase, m, geom.Coord{})
		winner := "central"
		if int64(lDC.Metrics().Total) < int64(st.TotalEnergy) {
			winner = "d&c"
		}
		return rows{{p.name,
			int64(lDC.Metrics().Total), int64(st.TotalEnergy),
			stats.Ratio(float64(st.TotalEnergy), float64(lDC.Metrics().Total)),
			int64(resDC.Completion), int64(st.Latency), winner}}
	})
	return tab
}
