package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"wsnva/internal/deploy"
	"wsnva/internal/fault"
	"wsnva/internal/geom"
	"wsnva/internal/shard"
	"wsnva/internal/stats"
)

// e21cfg is one execution strategy in the E21 sweep.
type e21cfg struct{ shards, workers int }

// E21ShardScaling measures the sharded parallel kernel (internal/shard)
// against its single-kernel oracle: nodes × (shards, workers) versus
// wall-clock and allocations, on the multi-source dissemination
// workload. The checksum column witnesses that every configuration of a
// grid computed the identical result — the speedup is never bought with
// divergence.
//
// Unlike the other experiments the wall and malloc columns here are
// measurements of this process, not simulation outputs, so the table is
// not byte-deterministic and is excluded from the golden-table tests;
// rows run sequentially (never on the options pool) so the readings
// attribute to one configuration at a time. Shard-level parallelism
// only buys wall time on multi-core hosts — on a single-core container
// the sweep records the bookkeeping overhead instead; EXPERIMENTS.md
// discusses the observed numbers.
func E21ShardScaling(o Options) *stats.Table {
	tab := stats.NewTable("E21: sharded kernel scaling — multi-source dissemination, conservative windows (lookahead = min radio delay)",
		"nodes", "floods", "shards", "workers", "wall ms", "mallocs", "speedup", "checksum")

	grids := []int{2000, 8000}
	floods := 16
	configs := []e21cfg{{1, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 4}}
	if o.Quick {
		grids = []int{600}
		floods = 8
		configs = []e21cfg{{1, 1}, {4, 2}}
	}
	if o.Shards > 0 {
		configs = []e21cfg{{1, 1}, {o.Shards, 0}}
	}

	for _, n := range grids {
		nw := e21net(n)
		var base float64
		for i, c := range configs {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			t0 := time.Now()
			res, err := shard.Run(nw, shard.Config{
				Shards: c.shards, Workers: c.workers,
				Floods: floods, PktSize: 2,
			})
			wall := time.Since(t0)
			runtime.ReadMemStats(&after)
			if err != nil {
				panic(fmt.Sprintf("experiments: E21 n=%d shards=%d: %v", n, c.shards, err))
			}
			ms := float64(wall.Nanoseconds()) / 1e6
			if i == 0 {
				base = ms
			}
			tab.AddRow(n, floods, c.shards, c.workers, ms,
				int64(after.Mallocs-before.Mallocs),
				stats.Ratio(base, ms),
				fmt.Sprintf("%016x", res.Checksum()))
		}
	}
	return tab
}

// E22HazardScaling is E21's sweep with the formerly lifted restrictions
// armed: the same dissemination workload under a Bernoulli channel, a
// Gilbert–Elliott bursty channel, and a combined crash-schedule plus
// battery-depletion scenario, each across the (shards, workers) ladder.
// The match column witnesses the tentpole claim — counter-keyed loss
// draws and instant-granularity deaths make every shard count compute
// the oracle's exact result, so the parallel speedup survives hazards.
// Wall and malloc readings are process measurements, as in E21, so this
// table is also excluded from the golden-table tests.
func E22HazardScaling(o Options) *stats.Table {
	tab := stats.NewTable("E22: sharded kernel scaling under hazards — lossy channels, mid-run crashes, battery depletion",
		"nodes", "hazard", "shards", "workers", "wall ms", "drops", "deaths", "speedup", "match", "checksum")

	grids := []int{2000, 8000}
	floods := 16
	configs := []e21cfg{{1, 1}, {2, 2}, {4, 4}, {8, 4}}
	if o.Quick {
		grids = []int{600}
		floods = 8
		configs = []e21cfg{{1, 1}, {4, 2}}
	}
	if o.Shards > 0 {
		configs = []e21cfg{{1, 1}, {o.Shards, 0}}
	}

	for _, n := range grids {
		nw := e21net(n)
		scenarios := []struct {
			name string
			cfg  shard.Config
		}{
			{"bernoulli 0.15", shard.Config{Loss: 0.15, Seed: 7}},
			{"burst GE", shard.Config{Burst: fault.DefaultBurst(), Seed: 7}},
			{"crash+deplete", shard.Config{
				Crashes:  fault.MustRandom(n, 0.05, 50, 7),
				Capacity: 400,
				Deplete:  true,
			}},
		}
		for _, sc := range scenarios {
			var base float64
			var oracle uint64
			for i, c := range configs {
				cfg := sc.cfg
				cfg.Shards, cfg.Workers = c.shards, c.workers
				cfg.Floods, cfg.PktSize = floods, 2
				runtime.GC()
				t0 := time.Now()
				res, err := shard.Run(nw, cfg)
				wall := time.Since(t0)
				if err != nil {
					panic(fmt.Sprintf("experiments: E22 n=%d %s shards=%d: %v", n, sc.name, c.shards, err))
				}
				ms := float64(wall.Nanoseconds()) / 1e6
				if i == 0 {
					base = ms
					oracle = res.Checksum()
				}
				tab.AddRow(n, sc.name, c.shards, c.workers, ms,
					res.Dropped, res.Deaths,
					stats.Ratio(base, ms),
					res.Checksum() == oracle,
					fmt.Sprintf("%016x", res.Checksum()))
			}
		}
	}
	return tab
}

// e21net builds a constant-density deployment (about 12 neighbors per
// node) for the scaling sweep, retrying seeds until the disk graph is
// connected.
func e21net(n int) *deploy.Network {
	side := math.Sqrt(float64(n))
	terrain := geom.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side}
	for seed := int64(1); seed <= 40; seed++ {
		nw := deploy.New(n, terrain, 2, deploy.UniformRandom{}, rand.New(rand.NewSource(seed)))
		if nw.Connected() {
			return nw
		}
	}
	panic(fmt.Sprintf("experiments: no connected %d-node deployment in 40 seeds", n))
}
