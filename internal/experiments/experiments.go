// Package experiments implements the reproduction harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E21 plus the A-series
// ablations), each returning a printable table. cmd/benchtab prints them
// all; bench_test.go wraps each in a testing.B benchmark; EXPERIMENTS.md
// records the observed outputs against the paper's claims.
//
// The paper (a methodology paper) has no quantitative tables of its own;
// each experiment here reproduces either one of its conceptual figures as
// an executable artifact (E1, E2) or one of its explicit analytical claims
// (E3–E10). All experiments are deterministic: fixed seeds, integer cost
// units.
package experiments

import (
	"fmt"
	"math/rand"

	"wsnva/internal/baseline"
	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/lockstep"
	"wsnva/internal/mapping"
	"wsnva/internal/mission"
	"wsnva/internal/parallel"
	"wsnva/internal/regions"
	"wsnva/internal/runtime"
	"wsnva/internal/sim"
	"wsnva/internal/stats"
	"wsnva/internal/synth"
	"wsnva/internal/taskgraph"
	"wsnva/internal/trace"
	"wsnva/internal/varch"
)

// Options configures a harness run. Quick trims sweep ranges for use inside
// testing.B loops; the full ranges run in cmd/benchtab.
type Options struct {
	Quick bool
	// Pool fans the independent rows and trials of each experiment out
	// across worker goroutines. nil (or a 1-worker pool) runs sequentially.
	// Results are always emitted in submission order, so the output table
	// is byte-identical whatever the worker count — the determinism tests
	// in parallel_test.go pin this.
	Pool *parallel.Pool
	// Shards, when positive, narrows the E21 scaling sweep to the pair
	// {sequential oracle, Shards shards on a GOMAXPROCS pool} — the knob
	// benchtab's -shards flag threads through (and records in the
	// -bench-json header, since shard counts change what the wall-time
	// numbers mean).
	Shards int
	// Trace, if non-nil, receives structured events from every engine the
	// experiment drives (machines, ledgers, banks, media). Nil — the default
	// and what benchtab uses — keeps every run untraced and byte-identical
	// to the pre-observability harness. With a pool attached, events from
	// concurrent sweep tasks interleave in scheduler order; trace one row at
	// a time (or run sequentially) when event order matters.
	Trace *trace.Tracer
}

func sides(o Options, full ...int) []int {
	if o.Quick && len(full) > 2 {
		return full[:2]
	}
	return full
}

// rows is one sweep task's result: zero or more table rows, in the order
// they should appear.
type rows [][]any

// sweep fans body out over [0,n) on the options' pool and appends every
// task's rows to tab in submission (index) order. Each task must be
// self-contained: fresh ledgers, machines, and RNGs per index.
func sweep(o Options, tab *stats.Table, n int, body func(i int) rows) {
	for _, rs := range parallel.Map(o.Pool, n, body) {
		for _, cells := range rs {
			tab.AddRow(cells...)
		}
	}
}

// blobMapFor builds the standard workload: a few Gaussian hot spots
// thresholded over the grid, deterministic per (side, seed).
func blobMapFor(side int, seed int64) *field.BinaryMap {
	g := geom.NewSquareGrid(side, float64(side))
	f := field.RandomBlobs(4, g.Terrain, float64(side)/8, float64(side)/5, rand.New(rand.NewSource(seed)))
	return field.Threshold(f, g, 0.5, 0)
}

// boundedMapFor builds a map whose feature content does not grow with the
// grid: a single fixed-size block — the O(1)-data regime of the paper's
// step-count analysis.
func boundedMapFor(side int) *field.BinaryMap {
	g := geom.NewSquareGrid(side, float64(side))
	m := field.FromBits(g, make([]bool, g.N()))
	for _, c := range []geom.Coord{{Col: 0, Row: 0}, {Col: 1, Row: 0}, {Col: 0, Row: 1}, {Col: 1, Row: 1}} {
		m.Bits[g.Index(c)] = true
	}
	return m
}

// runDES executes one synthesized labeling round on the DES machine,
// optionally observed by tr (nil: untraced).
func runDES(m *field.BinaryMap, tr *trace.Tracer) (*synth.Result, *cost.Ledger) {
	h := varch.MustHierarchy(m.Grid)
	l := cost.NewLedger(cost.NewUniform(), m.Grid.N())
	k := sim.New()
	vm := varch.NewMachine(h, k, l)
	if tr != nil {
		vm.SetTracer(tr)
		l.SetTracer(tr, k.Now)
	}
	res, err := synth.RunOnMachine(vm, m)
	if err != nil {
		panic(fmt.Sprintf("experiments: DES round failed: %v", err))
	}
	return res, l
}

// E1Mapping reproduces Figures 2 and 3: the quad-tree task graph for the
// 4×4 grid and the paper's quadrant-recursive mapping, with both design
// constraints checked. One row per task level plus the exact placements
// the paper quotes (root -> 0; level-1 -> 0, 4, 8, 12).
func E1Mapping(o Options) *stats.Table {
	tree := taskgraph.QuadTree(2, 1)
	grid := geom.NewSquareGrid(4, 4)
	a := mapping.PaperMapping(tree, grid)
	covOK := a.CheckCoverage() == nil
	spatOK := a.CheckSpatialCorrelation() == nil
	tab := stats.NewTable("E1: Fig 2/3 quad-tree mapping onto the 4x4 grid",
		"level", "tasks", "morton cells", "coverage ok", "spatial ok")
	for level := len(tree.Levels) - 1; level >= 0; level-- {
		cells := ""
		for i, id := range tree.Levels[level] {
			if i > 0 {
				cells += ","
			}
			cells += fmt.Sprint(geom.MortonIndex(a.At[id]))
			if i >= 7 {
				cells += ",..."
				break
			}
		}
		tab.AddRow(level, len(tree.Levels[level]), cells, covOK, spatOK)
	}
	return tab
}

// E2Steps reproduces the Section 4.1 complexity claim: completion time of
// the synthesized program versus grid size, for bounded feature content
// (the O(sqrt N)-steps regime) and for a solid field (the perimeter-bound
// regime), cross-checked between the DES machine and the goroutine runtime.
func E2Steps(o Options) *stats.Table {
	tab := stats.NewTable("E2: Fig 4 program execution — completion vs N",
		"side", "N", "levels", "t_bounded", "t_bounded/side", "t_solid", "firings", "engines agree")
	ss := sides(o, 4, 8, 16, 32, 64)
	sweep(o, tab, len(ss), func(i int) rows {
		side := ss[i]
		bounded := boundedMapFor(side)
		resB, _ := runDES(bounded, o.Trace)
		solid := field.Threshold(field.Constant{Value: 1}, geom.NewSquareGrid(side, float64(side)), 0.5, 0)
		resS, _ := runDES(solid, o.Trace)
		agree := "-"
		if side <= 16 {
			h := varch.MustHierarchy(bounded.Grid)
			rt, err := runtime.New(h).Run(bounded, nil, runtime.Config{Seed: 7, Tracer: o.Trace})
			if err != nil {
				panic(err)
			}
			agree = fmt.Sprint(rt.Final.Equal(resB.Final))
		}
		return rows{{side, side * side, geom.Log2(side),
			int64(resB.Completion),
			float64(resB.Completion) / float64(side),
			int64(resS.Completion), resB.RuleFirings, agree}}
	})
	return tab
}

// E3DCvsCentral reproduces the Section 2 design-flow comparison: the
// divide-and-conquer algorithm versus centralized collection, on total
// energy and latency, across grid sizes. The shape to verify: D&C wins
// energy by a factor that grows with N, and wins latency at scale.
func E3DCvsCentral(o Options) *stats.Table {
	tab := stats.NewTable("E3: divide-and-conquer vs centralized collection",
		"side", "dc energy", "central energy", "energy ratio", "dc latency", "central latency", "latency ratio", "winner")
	ss := sides(o, 4, 8, 16, 32)
	sweep(o, tab, len(ss), func(i int) rows {
		side := ss[i]
		m := blobMapFor(side, 101)
		resDC, lDC := runDES(m, o.Trace)
		dcEnergy := float64(lDC.Metrics().Total)
		lBase := cost.NewLedger(cost.NewUniform(), m.Grid.N())
		_, st := baseline.Run(lBase, m, geom.Coord{})
		winner := "central"
		if dcEnergy < float64(st.TotalEnergy) {
			winner = "d&c"
		}
		return rows{{side,
			int64(dcEnergy), int64(st.TotalEnergy),
			stats.Ratio(float64(st.TotalEnergy), dcEnergy),
			int64(resDC.Completion), int64(st.Latency),
			stats.Ratio(float64(st.Latency), float64(resDC.Completion)),
			winner}}
	})
	return tab
}

// E4Balance reproduces the energy-balance metric of Section 2: the hottest
// node's load and the max/mean balance factor for both strategies, plus the
// first-node-death lifetime under a fixed per-node budget.
func E4Balance(o Options) *stats.Table {
	const budget = cost.Energy(1_000_000)
	tab := stats.NewTable("E4: energy balance and lifetime",
		"side", "dc max node", "dc balance", "central max node", "central balance", "dc lifetime", "central lifetime")
	ss := sides(o, 4, 8, 16, 32)
	sweep(o, tab, len(ss), func(i int) rows {
		side := ss[i]
		m := blobMapFor(side, 101)
		_, lDC := runDES(m, o.Trace)
		dcm := lDC.Metrics()
		lBase := cost.NewLedger(cost.NewUniform(), m.Grid.N())
		baseline.Run(lBase, m, geom.Coord{})
		bm := lBase.Metrics()
		return rows{{side,
			int64(dcm.Max), dcm.Balance,
			int64(bm.Max), bm.Balance,
			lDC.Lifetime(budget), lBase.Lifetime(budget)}}
	})
	return tab
}

// E9Collectives reproduces the Section 3.2 requirement that the virtual
// architecture export per-primitive costs: the collective primitives'
// energy and latency per group level under both gather strategies.
func E9Collectives(o Options) *stats.Table {
	side := 16
	if o.Quick {
		side = 8
	}
	g := geom.NewSquareGrid(side, float64(side))
	h := varch.MustHierarchy(g)
	vals := func(c geom.Coord) int64 { return int64(g.Index(c)) }
	tab := stats.NewTable(fmt.Sprintf("E9: collective primitive costs on the %dx%d grid", side, side),
		"primitive", "level", "strategy", "energy", "latency")
	type combo struct {
		level int
		strat varch.Strategy
	}
	var combos []combo
	for level := 1; level <= h.Levels; level++ {
		for _, strat := range []varch.Strategy{varch.Direct, varch.Convergecast} {
			combos = append(combos, combo{level, strat})
		}
	}
	sweep(o, tab, len(combos), func(i int) rows {
		c := combos[i]
		// One ledger per task, Reset between primitives: the collective
		// sweep is exactly the per-round reuse pattern the resettable
		// ledger exists for.
		l := cost.NewLedger(cost.NewUniform(), g.N())
		var out rows
		for _, prim := range []string{"sum", "sort"} {
			l.Reset()
			vm := varch.NewMachine(h, sim.New(), l)
			var lat sim.Time
			switch prim {
			case "sum":
				_, lat = vm.GroupSum(h.Root(), c.level, vals, c.strat)
			case "sort":
				_, lat = vm.GroupSort(h.Root(), c.level, vals, c.strat)
			}
			out = append(out, []any{prim, c.level, c.strat.String(), int64(l.Metrics().Total), int64(lat)})
		}
		return out
	})
	return tab
}

// E7Loss reproduces the Section 4.3 asynchrony/loss discussion: completion
// probability, achieved root coverage, and correctness of completed rounds
// under increasing message loss, on the goroutine runtime.
func E7Loss(o Options) *stats.Table {
	side := 8
	trials := 20
	if o.Quick {
		trials = 5
	}
	m := blobMapFor(side, 55)
	truth := regions.Label(m).Count
	h := varch.MustHierarchy(m.Grid)
	tab := stats.NewTable("E7: labeling under message loss (8x8 grid)",
		"loss", "retries", "trials", "completed", "stalled", "avg coverage", "completed correct")
	type config struct {
		loss    float64
		retries int
	}
	var cfgs []config
	for _, loss := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.3} {
		for _, retries := range []int{0, 3} {
			if retries > 0 && loss == 0 {
				continue // identical to the loss-free best-effort row
			}
			cfgs = append(cfgs, config{loss, retries})
		}
	}
	// Fan out at trial granularity: every (config, trial) task runs its own
	// goroutine engine with the trial's fixed seed, and the per-config
	// aggregation below folds the results back in trial order.
	type trialResult struct {
		completed, correct bool
		coverage           int
	}
	results := parallel.Map(o.Pool, len(cfgs)*trials, func(t int) trialResult {
		cfg, trial := cfgs[t/trials], t%trials
		res, err := runtime.New(h).Run(m, nil,
			runtime.Config{Loss: cfg.loss, Retries: cfg.retries, Seed: int64(trial*31 + 7), Tracer: o.Trace})
		if err != nil {
			panic(err)
		}
		out := trialResult{coverage: res.RootCoverage}
		if res.Final != nil {
			out.completed = true
			out.correct = res.Final.Count() == truth
		}
		return out
	})
	for ci, cfg := range cfgs {
		completed, correct, coverage := 0, 0, 0
		for _, r := range results[ci*trials : (ci+1)*trials] {
			coverage += r.coverage
			if r.completed {
				completed++
				if r.correct {
					correct++
				}
			}
		}
		tab.AddRow(cfg.loss, cfg.retries, trials, completed, trials-completed,
			float64(coverage)/float64(trials), fmt.Sprintf("%d/%d", correct, completed))
	}
	return tab
}

// E14AlarmApp measures the event-driven application regime Section 4.1
// contrasts with the periodic task graph: the alarm program's cost is
// proportional to the number of events, while the labeling program pays
// Θ(N) every round regardless. The sweep grows a fire across a 16x16 grid
// and reports both programs' energy plus the alarm's detection latency.
func E14AlarmApp(o Options) *stats.Table {
	side := 16
	if o.Quick {
		side = 8
	}
	g := geom.NewSquareGrid(side, float64(side)*10)
	h := varch.MustHierarchy(g)
	quorum := 4
	tab := stats.NewTable(fmt.Sprintf("E14: event-driven alarm vs periodic labeling (%dx%d grid, quorum %d)", side, side, quorum),
		"hot cells", "alarm energy", "alarm raised", "detect latency", "labeling energy")
	sigmas := []float64{0, 4, 8, 16, 32, 64}
	sweep(o, tab, len(sigmas), func(i int) rows {
		sigma := sigmas[i]
		var m *field.BinaryMap
		if sigma == 0 {
			m = field.Threshold(field.Constant{Value: 0}, g, 0.5, 0)
		} else {
			blaze := field.Blobs{Items: []field.Blob{
				{Center: geom.Point{X: g.Terrain.Width() * 0.6, Y: g.Terrain.Height() * 0.35}, Sigma: sigma, Peak: 1},
			}}
			m = field.Threshold(blaze, g, 0.5, 0)
		}
		alarmLedger := cost.NewLedger(cost.NewUniform(), g.N())
		vm := varch.NewMachine(h, sim.New(), alarmLedger)
		res, err := synth.RunAlarmOnMachine(vm, m, quorum)
		if err != nil {
			panic(err)
		}
		_, labelLedger := runDES(m, o.Trace)
		latency := "-"
		if res.Raised {
			latency = fmt.Sprint(res.RaisedAt)
		}
		return rows{{m.Count(), int64(alarmLedger.Metrics().Total), res.Raised, latency,
			int64(labelLedger.Metrics().Total)}}
	})
	return tab
}

// E15Lifetime simulates the system-lifetime metric round by round (rather
// than extrapolating from one round as E4 does): the mission runner drives
// the D&C duty cycle to first node death, and a matching loop does the same
// for the centralized baseline. The agreement with E4's extrapolation is
// itself a check on the cost model's compositionality.
func E15Lifetime(o Options) *stats.Table {
	const budget = cost.Energy(20_000)
	tab := stats.NewTable("E15: simulated lifetime to first node death (budget 20k units/node)",
		"side", "dc rounds", "central rounds", "dc/central", "dc hot spot", "central hot spot")
	ss := sides(o, 8, 16)
	sweep(o, tab, len(ss), func(i int) rows {
		side := ss[i]
		g := geom.NewSquareGrid(side, float64(side))
		phen := field.RandomBlobs(3, g.Terrain, float64(side)/8, float64(side)/5, rand.New(rand.NewSource(5)))
		out, err := mission.Run(mission.Config{
			Hier:       varch.MustHierarchy(g),
			Phenomenon: phen,
			Threshold:  0.5,
			Interval:   100,
			Budget:     budget,
		})
		if err != nil {
			panic(err)
		}
		// Centralized: repeat collection rounds on one cumulative ledger.
		lBase := cost.NewLedger(cost.NewUniform(), g.N())
		centralRounds := 0
		for centralRounds < 100_000 {
			m := field.Threshold(phen, g, 0.5, int64(centralRounds*100))
			baseline.Run(lBase, m, geom.Coord{})
			if lBase.MaxEnergy() > budget {
				break
			}
			centralRounds++
		}
		centralHot := 0
		for i := 0; i < lBase.N(); i++ {
			if lBase.Energy(i) > lBase.Energy(centralHot) {
				centralHot = i
			}
		}
		return rows{{side, out.RoundsSurvived, centralRounds,
			stats.Ratio(float64(out.RoundsSurvived), float64(centralRounds)),
			out.HotSpot(g).String(), g.CoordOf(centralHot).String()}}
	})
	return tab
}

// E11SyncSteps reproduces the Section 4.1 step-count claim on the
// synchronous (TDMA-style) engine, where a "step" is exactly one
// store-and-forward round and message sizes cannot blur the measure: the
// round count must be Θ(√N) regardless of workload.
func E11SyncSteps(o Options) *stats.Table {
	tab := stats.NewTable("E11: synchronous engine — store-and-forward rounds vs N",
		"side", "N", "rounds(bounded)", "rounds(solid)", "rounds/side", "energy = DES")
	ss := sides(o, 4, 8, 16, 32, 64)
	sweep(o, tab, len(ss), func(i int) rows {
		side := ss[i]
		bounded := boundedMapFor(side)
		g := bounded.Grid
		h := varch.MustHierarchy(g)

		lb := cost.NewLedger(cost.NewUniform(), g.N())
		resB, err := lockstep.New(h, lb).Run(bounded)
		if err != nil {
			panic(err)
		}
		solid := field.Threshold(field.Constant{Value: 1}, g, 0.5, 0)
		ls := cost.NewLedger(cost.NewUniform(), g.N())
		resS, err := lockstep.New(h, ls).Run(solid)
		if err != nil {
			panic(err)
		}
		_, desLedger := runDES(bounded, o.Trace)
		return rows{{side, side * side, resB.Rounds, resS.Rounds,
			float64(resB.Rounds) / float64(side),
			lb.Metrics().Total == desLedger.Metrics().Total}}
	})
	return tab
}
