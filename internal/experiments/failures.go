package experiments

import (
	"wsnva/internal/cost"
	"wsnva/internal/fault"
	"wsnva/internal/sim"
	"wsnva/internal/stats"
	"wsnva/internal/synth"
	"wsnva/internal/trace"
	"wsnva/internal/varch"
)

// The failure-sweep family (E17, E18) measures the fault-injection
// subsystem end to end: how the synthesized labeling application degrades
// under fail-stop crashes, and what the stop-and-wait ARQ buys back under
// message loss. Both run on the DES fault driver (synth.RunWithFaults), so
// every row is byte-deterministic: crash schedules are pure functions of
// (n, fraction, seed) with nested prefixes — raising the fraction only adds
// victims, never moves existing ones — and loss draws come from a fixed
// per-row seed.

// crashWindow is the time span [1, crashWindow] over which random crash
// schedules spread their fail-stop times — early enough to hit every level
// of the aggregation tree on the swept grids.
const crashWindow = sim.Time(40)

// faultRound runs one fault-injected labeling round and returns the result
// alongside the machine it ran on (for its ledger and counters). tr, when
// non-nil, observes the machine, its ledger, and the battery bank (if the
// config carries one).
func faultRound(side int, mapSeed int64, cfg synth.FaultConfig, tr *trace.Tracer) (*synth.FaultResult, *varch.Machine) {
	m := blobMapFor(side, mapSeed)
	h := varch.MustHierarchy(m.Grid)
	k := sim.New()
	vm := varch.NewMachine(h, k, cost.NewLedger(cost.NewUniform(), m.Grid.N()))
	if tr != nil {
		vm.SetTracer(tr)
		vm.Ledger().SetTracer(tr, k.Now)
		if cfg.Battery != nil {
			cfg.Battery.SetTracer(tr, k.Now)
		}
	}
	if cfg.LevelDeadline == 0 {
		cfg.LevelDeadline = synth.DefaultLevelDeadline(vm)
	}
	res, err := synth.RunWithFaults(vm, m, cfg)
	if err != nil {
		panic(err)
	}
	return res, vm
}

// E17FailureSweep sweeps the crash fraction and reports how the labeling
// round degrades: coverage (fraction of the map the exfiltrated summary
// accounts for), forced promotions and leader failovers (the watchdog
// machinery's work), and total energy. Nested crash sets make coverage
// non-increasing down each side's block of rows.
func E17FailureSweep(o Options) *stats.Table {
	tab := stats.NewTable("E17: labeling under fail-stop crashes (watchdog failover, seed-derived schedules)",
		"side", "crash frac", "crashed", "coverage", "completion", "forced promos", "failovers", "dead drops", "energy")
	ss := sides(o, 8, 16)
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.3}
	sweep(o, tab, len(ss)*len(fracs), func(i int) rows {
		side, frac := ss[i/len(fracs)], fracs[i%len(fracs)]
		n := side * side
		res, vm := faultRound(side, 7, synth.FaultConfig{
			Schedule: fault.MustRandom(n, frac, crashWindow, 1000+int64(side)),
		}, o.Trace)
		completion := any("stalled")
		if res.Final != nil {
			completion = res.Completion
		}
		return rows{{side, frac, res.Crashed, res.Coverage, completion,
			res.ForcedPromotions, res.LeaderFailovers, res.Stats.DeadDrops,
			vm.Ledger().Total()}}
	})
	return tab
}

// E18ReliableDelivery sweeps message loss with the ARQ off and on, under a
// fixed 10% crash fraction: the reliability layer should hold delivery rate
// and coverage near the loss-free values at the price of retransmission and
// acknowledgment energy.
func E18ReliableDelivery(o Options) *stats.Table {
	tab := stats.NewTable("E18: stop-and-wait ARQ under loss + 10% crashes (retries 3, capped backoff)",
		"side", "loss", "arq", "delivered", "lost", "retrans", "acks", "delivery rate", "coverage", "energy")
	ss := sides(o, 8, 16)
	losses := []float64{0, 0.05, 0.1, 0.2}
	arqs := []fault.Reliability{{}, fault.DefaultReliability()}
	sweep(o, tab, len(ss)*len(losses)*len(arqs), func(i int) rows {
		side := ss[i/(len(losses)*len(arqs))]
		loss := losses[(i/len(arqs))%len(losses)]
		rel := arqs[i%len(arqs)]
		n := side * side
		res, vm := faultRound(side, 7, synth.FaultConfig{
			Schedule:    fault.MustRandom(n, 0.1, crashWindow, 1000+int64(side)),
			Loss:        loss,
			LossSeed:    33 + int64(side),
			Reliability: rel,
		}, o.Trace)
		msgs, _ := vm.Stats()
		arqLabel := "off"
		if rel.Enabled() {
			arqLabel = "on"
		}
		return rows{{side, loss, arqLabel, res.Stats.Delivered, res.Stats.Lost,
			res.Stats.Retransmissions, res.Stats.Acks,
			stats.Ratio(float64(res.Stats.Delivered), float64(msgs)),
			res.Coverage, vm.Ledger().Total()}}
	})
	return tab
}
