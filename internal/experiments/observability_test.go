package experiments

import (
	"testing"
	"testing/quick"

	"wsnva/internal/battery"
	"wsnva/internal/cost"
	"wsnva/internal/fault"
	"wsnva/internal/synth"
	"wsnva/internal/trace"
	"wsnva/internal/trace/check"
)

// TestTraceTransparency pins the observability layer's core promise at the
// harness level: attaching a tracer changes nothing about the results. The
// three experiments cover the three engine families that emit — the DES
// machine (E2), the goroutine runtime (E7), and the physical radio plane
// (E12) — and each must render a byte-identical table traced and untraced.
func TestTraceTransparency(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Options) string
	}{
		{"E2-des", func(o Options) string { return E2Steps(o).String() }},
		{"E7-runtime", func(o Options) string { return E7Loss(o).String() }},
		{"E12-physical", func(o Options) string { return E12TreeTopology(o).String() }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			plain := tc.run(Options{Quick: true})
			tr := trace.New(1 << 20)
			traced := tc.run(Options{Quick: true, Trace: tr})
			if plain != traced {
				t.Errorf("%s: table diverges when traced:\n--- untraced ---\n%s\n--- traced ---\n%s",
					tc.name, plain, traced)
			}
			if tr.Emitted() == 0 {
				t.Errorf("%s: tracer attached but saw no events", tc.name)
			}
		})
	}
}

// TestRunDESTransparencyProperty is the same promise as a property over
// random workloads: for any map seed, a traced DES labeling round and an
// untraced one agree on completion time, rule firings, region count, and
// ledger total.
func TestRunDESTransparencyProperty(t *testing.T) {
	prop := func(s uint8) bool {
		seed := int64(s)
		plain, plainLedger := runDES(blobMapFor(8, seed), nil)
		tr := trace.New(1 << 18)
		traced, tracedLedger := runDES(blobMapFor(8, seed), tr)
		return plain.Completion == traced.Completion &&
			plain.RuleFirings == traced.RuleFirings &&
			plain.Final.Count() == traced.Final.Count() &&
			plainLedger.Total() == tracedLedger.Total() &&
			tr.Emitted() > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// invariantRound traces one fault-injected round with a ring big enough to
// lose nothing, then replays the stream through the invariant engine with
// the run's own ledger total as the conservation target.
func invariantRound(t *testing.T, name string, cfg synth.FaultConfig) {
	t.Helper()
	tr := trace.New(1 << 20)
	_, vm := faultRound(8, 7, cfg, tr)
	if tr.Lost() != 0 {
		t.Fatalf("%s: ring overflowed (lost %d); conservation rules need a complete trace", name, tr.Lost())
	}
	vs := check.Run(tr.Events(), check.Options{Side: 8, LedgerTotal: int64(vm.Ledger().Total())})
	for i, v := range vs {
		if i >= 5 {
			t.Errorf("%s: ... and %d more", name, len(vs)-i)
			break
		}
		t.Errorf("%s: %s", name, v)
	}
}

// TestInvariantFaultSweeps replays traced rounds from the E17/E18/E20
// regimes — crashes with watchdog failover, loss with the ARQ armed, and
// battery depletion under a bursty channel — through every trace/check
// rule. This is the payoff of the layer: the conformance argument is "the
// whole event stream is lawful", not "a few final counters look right".
func TestInvariantFaultSweeps(t *testing.T) {
	n := 8 * 8
	invariantRound(t, "E17-crashes", synth.FaultConfig{
		Schedule: fault.MustRandom(n, 0.2, crashWindow, 1000+8),
	})
	invariantRound(t, "E18-arq-loss", synth.FaultConfig{
		Schedule:    fault.MustRandom(n, 0.1, crashWindow, 1000+8),
		Loss:        0.1,
		LossSeed:    33 + 8,
		Reliability: fault.DefaultReliability(),
	})
	burst := fault.DefaultBurst()
	invariantRound(t, "E20-depletion-burst", synth.FaultConfig{
		Burst:       &burst,
		BurstSeed:   97,
		Reliability: fault.DefaultReliability(),
		Battery:     battery.Uniform(n, 100),
	})
}

// TestInvariantLifetimeMission replays an E19-style depletion mission on
// the physical stack. The tracer attaches after setup (the budgets'
// sunk-cost convention), so the ledger total includes untraced setup
// charges and the conservation rule is skipped (LedgerTotal -1); every
// pairing, liveness, and ordering rule still applies to both planes.
func TestInvariantLifetimeMission(t *testing.T) {
	for _, rotate := range []bool{false, true} {
		tr := trace.New(1 << 20)
		out, _ := lifetimeMission(cost.Energy(200), rotate, tr)
		if tr.Lost() != 0 {
			t.Fatalf("rotate=%v: ring overflowed (lost %d)", rotate, tr.Lost())
		}
		if out.Rounds == 0 {
			t.Fatalf("rotate=%v: mission ran no rounds", rotate)
		}
		vs := check.Run(tr.Events(), check.Options{Side: 4, LedgerTotal: -1})
		for i, v := range vs {
			if i >= 5 {
				t.Errorf("rotate=%v: ... and %d more", rotate, len(vs)-i)
				break
			}
			t.Errorf("rotate=%v: %s", rotate, v)
		}
	}
}
