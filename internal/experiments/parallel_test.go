package experiments

import (
	"testing"

	"wsnva/internal/parallel"
	"wsnva/internal/stats"
)

// TestParallelTablesByteIdentical pins the engine's central guarantee: the
// worker pool only changes wall time, never output. Every table generated
// with a multi-worker pool must serialize byte-for-byte identically to the
// sequential run, because rows are collected in submission order and every
// trial's seed derives from its position in the sweep, not from scheduling.
func TestParallelTablesByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		id  string
		run func(Options) *stats.Table
	}{
		{"E2", E2Steps},
		{"E7", E7Loss},
		{"E12", E12TreeTopology},
		{"E17", E17FailureSweep},
		{"E18", E18ReliableDelivery},
		{"A3", A3CostSensitivity},
	} {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			seq := tc.run(Options{Quick: true}).CSV()
			par := tc.run(Options{Quick: true, Pool: parallel.New(4)}).CSV()
			if seq != par {
				t.Fatalf("%s: parallel table differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", tc.id, seq, par)
			}
		})
	}
}
