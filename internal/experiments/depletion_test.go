package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"wsnva/internal/battery"
	"wsnva/internal/cost"
	"wsnva/internal/fault"
	"wsnva/internal/synth"
)

// TestE19GoldenCSV pins the quick lifetime sweep byte-for-byte: deploys,
// elections, depletion order, and rotation decisions are all pure functions
// of the seeds. Regenerate deliberately with
// UPDATE_GOLDEN=1 go test ./internal/experiments after an intentional
// behavior change.
func TestE19GoldenCSV(t *testing.T) {
	got := E19NetworkLifetime(Options{Quick: true}).CSV()
	path := filepath.Join("testdata", "e19_quick.golden.csv")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("E19 quick CSV drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestE19RotationExtendsLifetime is the sweep's headline claim checked
// directly on the mission driver: at every budget, rotating executors onto
// the highest-residual member delays the first depletion (in rounds) at
// least as long as static leaders do, and delivers at least as many
// completed rounds.
func TestE19RotationExtendsLifetime(t *testing.T) {
	for _, budget := range e19Budgets {
		static, _ := lifetimeMission(budget, false, nil)
		rotate, _ := lifetimeMission(budget, true, nil)
		sFirst, rFirst := static.FirstDeathRound, rotate.FirstDeathRound
		// -1 means nobody died within MaxRounds: treat as beyond the horizon.
		if sFirst == -1 {
			sFirst = e19MaxRounds + 1
		}
		if rFirst == -1 {
			rFirst = e19MaxRounds + 1
		}
		if rFirst < sFirst {
			t.Errorf("budget %d: rotation first death round %d earlier than static %d",
				budget, rotate.FirstDeathRound, static.FirstDeathRound)
		}
		if rotate.Rounds < static.Rounds {
			t.Errorf("budget %d: rotation completed %d rounds < static %d",
				budget, rotate.Rounds, static.Rounds)
		}
		if rotate.DistinctLeaders < static.DistinctLeaders {
			t.Errorf("budget %d: rotation used %d distinct leaders < static %d",
				budget, rotate.DistinctLeaders, static.DistinctLeaders)
		}
	}
}

// TestE19LifetimeMonotoneInBudget: within a mode, a larger budget never
// shortens the mission — rounds completed and first-death round are both
// non-decreasing, because the trajectory is identical until the smaller
// budget's first depletion.
func TestE19LifetimeMonotoneInBudget(t *testing.T) {
	for _, rotate := range []bool{false, true} {
		prevRounds, prevFirst := -1, -1
		for _, budget := range e19Budgets {
			out, _ := lifetimeMission(budget, rotate, nil)
			first := out.FirstDeathRound
			if first == -1 {
				first = e19MaxRounds + 1
			}
			if out.Rounds < prevRounds {
				t.Errorf("rotate=%v budget %d: rounds fell %d -> %d", rotate, budget, prevRounds, out.Rounds)
			}
			if first < prevFirst {
				t.Errorf("rotate=%v budget %d: first death moved earlier %d -> %d", rotate, budget, prevFirst, first)
			}
			prevRounds, prevFirst = out.Rounds, first
		}
	}
}

// TestE20ARQAcceleratesDepletion: the E20 claim on the driver — at a fixed
// budget under loss, arming the ARQ spends more total energy and depletes
// at least as many nodes as best-effort delivery, on both channel models.
func TestE20ARQAcceleratesDepletion(t *testing.T) {
	burst := fault.DefaultBurst()
	cases := []struct {
		name string
		cfg  synth.FaultConfig
	}{
		{"bernoulli", synth.FaultConfig{Loss: 0.2, LossSeed: 41}},
		{"burst", synth.FaultConfig{Burst: &burst, BurstSeed: 97}},
	}
	for _, tc := range cases {
		run := func(rel fault.Reliability) (int, cost.Energy) {
			cfg := tc.cfg
			cfg.Reliability = rel
			cfg.Battery = battery.Uniform(64, 100)
			res, vm := faultRound(8, 7, cfg, nil)
			return res.Depleted, vm.Ledger().Total()
		}
		plainDead, plainEnergy := run(fault.Reliability{})
		arqDead, arqEnergy := run(fault.DefaultReliability())
		if arqEnergy <= plainEnergy {
			t.Errorf("%s: ARQ energy %d not above best-effort %d", tc.name, arqEnergy, plainEnergy)
		}
		if arqDead < plainDead {
			t.Errorf("%s: ARQ depleted %d < best-effort %d", tc.name, arqDead, plainDead)
		}
	}
}

// TestDepletionSoak runs the randomized-but-seeded invariant check over a
// batch of configurations (loss rate, budget, ARQ on/off all drawn from the
// seed). `make soak` widens the batch via the SOAK_SEEDS env var.
func TestDepletionSoak(t *testing.T) {
	seeds := int64(6)
	if s := os.Getenv("SOAK_SEEDS"); s != "" {
		var parsed int64
		for _, c := range []byte(s) {
			if c < '0' || c > '9' {
				t.Fatalf("SOAK_SEEDS must be a positive integer, got %q", s)
			}
			parsed = parsed*10 + int64(c-'0')
		}
		if parsed > 0 {
			seeds = parsed
		}
	}
	for seed := int64(1); seed <= seeds; seed++ {
		if err := depletionSoakRound(seed); err != nil {
			t.Error(err)
		}
	}
}
