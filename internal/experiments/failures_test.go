package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"wsnva/internal/fault"
	"wsnva/internal/synth"
)

// TestE17GoldenCSV pins the failure sweep byte-for-byte against a committed
// golden file: crash schedules, watchdog timing, and energy accounting are
// all pure functions of the seeds, so the quick table must never drift.
// Regenerate deliberately with UPDATE_GOLDEN=1 go test ./internal/experiments
// after an intentional behavior change.
func TestE17GoldenCSV(t *testing.T) {
	got := E17FailureSweep(Options{Quick: true}).CSV()
	path := filepath.Join("testdata", "e17_quick.golden.csv")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("E17 quick CSV drifted from golden file %s\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestE17CoverageMonotone checks the sweep's headline property directly on
// the driver: because crash sets are nested (a higher fraction only adds
// victims), exfiltrated coverage is non-increasing in the crash fraction.
func TestE17CoverageMonotone(t *testing.T) {
	prev := 2.0
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		res, _ := faultRound(8, 7, synth.FaultConfig{
			Schedule: fault.MustRandom(64, frac, crashWindow, 1008),
		}, nil)
		if res.Final == nil {
			t.Fatalf("frac %v: stalled", frac)
		}
		if res.Coverage > prev {
			t.Errorf("coverage rose from %v to %v at frac %v", prev, res.Coverage, frac)
		}
		prev = res.Coverage
	}
}

// TestE18ARQNeverWorseDelivery: at every loss point of the E18 sweep, the
// ARQ's delivered count is at least the best-effort one — retransmission
// can only add delivery opportunities.
func TestE18ARQNeverWorseDelivery(t *testing.T) {
	for _, loss := range []float64{0, 0.05, 0.1, 0.2} {
		run := func(rel fault.Reliability) int64 {
			res, _ := faultRound(8, 7, synth.FaultConfig{
				Schedule:    fault.MustRandom(64, 0.1, crashWindow, 1008),
				Loss:        loss,
				LossSeed:    41,
				Reliability: rel,
			}, nil)
			return res.Stats.Delivered
		}
		plain, reliable := run(fault.Reliability{}), run(fault.DefaultReliability())
		if reliable < plain {
			t.Errorf("loss %v: ARQ delivered %d < best-effort %d", loss, reliable, plain)
		}
	}
}
