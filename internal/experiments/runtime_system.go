package experiments

import (
	"fmt"
	"math/rand"

	"wsnva/internal/binding"
	"wsnva/internal/cost"
	"wsnva/internal/deploy"
	"wsnva/internal/emul"
	"wsnva/internal/field"
	"wsnva/internal/flood"
	"wsnva/internal/geom"
	"wsnva/internal/parallel"
	"wsnva/internal/radio"
	"wsnva/internal/sim"
	"wsnva/internal/stats"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
	"wsnva/internal/vtopo"
	"wsnva/internal/vtree"
)

// physSetup builds a valid dense deployment over a side×side grid with the
// given mean nodes-per-cell density, returning the protocol stack pieces.
func physSetup(side, perCell int, txRange float64, seed int64) (*deploy.Network, *geom.Grid, *radio.Medium, *cost.Ledger) {
	g := geom.NewSquareGrid(side, float64(side)*10)
	rng := rand.New(rand.NewSource(seed))
	nw, _, err := deploy.Generate(side*side*perCell, g, txRange, deploy.UniformRandom{}, rng, 200)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	l := cost.NewLedger(cost.NewUniform(), nw.N())
	med := radio.NewMedium(nw, sim.New(), l, rand.New(rand.NewSource(seed+1)), radio.Config{})
	return nw, g, med, l
}

// E5Emulation reproduces the three efficiency claims of Section 5.1 for
// the topology-emulation protocol: parallel per-cell setup, one-boundary
// suppression, and setup latency proportional to the longest intra-cell
// path. Swept over deployment density.
func E5Emulation(o Options) *stats.Table {
	tab := stats.NewTable("E5: topology emulation setup (4x4 grid)",
		"nodes/cell", "n", "range/cell", "bcasts/node", "setup time", "max path len", "time/path", "suppressed", "complete")
	densities := []struct {
		perCell int
		txRange float64
	}{
		{3, 14}, {5, 12}, {10, 11}, {20, 10},
	}
	if o.Quick {
		densities = densities[:2]
	}
	sweep(o, tab, len(densities), func(i int) rows {
		d := densities[i]
		nw, g, med, _ := physSetup(4, d.perCell, d.txRange, int64(d.perCell)*13)
		p := vtopo.New(med, g)
		m := p.Run()
		pathLen := nw.MaxIntraCellPathLen(g)
		timePerPath := "-"
		if pathLen > 0 {
			timePerPath = fmt.Sprintf("%.2f", float64(m.SetupTime)/float64(pathLen))
		}
		return rows{{d.perCell, nw.N(),
			fmt.Sprintf("%.2f", d.txRange/g.CellSide()),
			float64(m.Broadcasts) / float64(nw.N()),
			int64(m.SetupTime), pathLen, timePerPath,
			m.Suppressed, m.Complete}}
	})
	return tab
}

// E6Election reproduces Section 5.2: convergence cost and correctness of
// the closest-to-center leader election, swept over cell population.
func E6Election(o Options) *stats.Table {
	tab := stats.NewTable("E6: leader election (4x4 grid)",
		"nodes/cell", "n", "bcasts/node", "convergence", "demotions", "correct")
	densities := []int{3, 5, 10, 20}
	if o.Quick {
		densities = densities[:2]
	}
	sweep(o, tab, len(densities), func(i int) rows {
		perCell := densities[i]
		nw, g, med, _ := physSetup(4, perCell, 12, int64(perCell)*17)
		metric := binding.MinDistance{Network: nw, Grid: g}
		res := binding.NewElection(med, g, metric).Run()
		correct := res.Verify(nw, g) == nil
		return rows{{perCell, nw.N(),
			float64(res.Broadcasts) / float64(nw.N()),
			int64(res.Convergence), res.Demotions, correct}}
	})
	return tab
}

// E8Correspondence reproduces the methodology's central promise (Sections 2
// and 5): that performance analysis on the virtual architecture corresponds
// to measured performance on the emulated network. For each group level it
// compares the predicted follower-to-leader cost (minimum grid hops under
// the uniform model) against the physical cost measured over the emulated
// topology, reporting the mean physical-per-virtual hop ratio and the
// correlation between prediction and measurement.
func E8Correspondence(o Options) *stats.Table {
	tab := stats.NewTable("E8: analysis vs emulated measurement (follower -> leader)",
		"grid", "level", "pairs", "mean virt hops", "mean phys hops", "phys/virt", "energy corr")
	gridSides := []int{4, 8}
	if o.Quick {
		gridSides = gridSides[:1]
	}
	const msgSize = 4
	sweep(o, tab, len(gridSides), func(gi int) rows {
		side := gridSides[gi]
		nw, g, med, l := physSetup(side, 8, 11, 29)
		p := vtopo.New(med, g)
		if m := p.Run(); !m.Complete {
			panic("experiments: emulation incomplete")
		}
		// Bind virtual processes so each cell has a concrete executor.
		bnd, _, err := binding.Bind(med, g, binding.MinDistance{Network: nw, Grid: g})
		if err != nil {
			panic(err)
		}
		h := varch.MustHierarchy(g)
		vm := varch.NewMachine(h, sim.New(), cost.NewLedger(cost.NewUniform(), g.N()))
		var out rows
		for level := 1; level <= h.Levels; level++ {
			var virt, phys []float64
			var predE, measE []float64
			for _, leader := range h.Leaders(level) {
				for _, f := range h.Followers(leader, level) {
					if f == leader {
						continue
					}
					pe, _ := vm.PredictLeaderCost(f, level, msgSize)
					before := l.Total()
					path, err := p.RouteCells(bnd.Leaders[f], leader, msgSize)
					if err != nil {
						panic(err)
					}
					med.Kernel().Run() // drain deliveries so rx energy lands
					measured := float64(l.Total() - before)
					virt = append(virt, float64(f.Manhattan(leader)))
					phys = append(phys, float64(len(path)))
					predE = append(predE, float64(pe))
					measE = append(measE, measured)
				}
			}
			vs, ps := stats.Summarize(virt), stats.Summarize(phys)
			out = append(out, []any{fmt.Sprintf("%dx%d", side, side), level, len(virt), vs.Mean, ps.Mean,
				stats.Ratio(ps.Mean, vs.Mean),
				stats.Correlation(predE, measE)})
		}
		return out
	})
	return tab
}

// E12TreeTopology reproduces the Section 3.2 remark that "for non-uniform
// deployments, other virtual topologies such as a tree could be more
// appropriate": as deployments cluster, the grid's occupancy precondition
// fails more and more often, while a BFS spanning tree keeps working
// whenever the network is connected — and its convergecast census beats
// per-node unicast collection on energy.
func E12TreeTopology(o Options) *stats.Table {
	tab := stats.NewTable("E12: tree virtual topology on non-uniform deployments (8x8 grid, 256 nodes)",
		"clustering", "grid occupancy ok", "tree spans", "tree depth", "census ok", "tree energy", "direct energy")
	spreads := []struct {
		name   string
		place  deploy.Placement
		trials int
	}{
		{"uniform", deploy.UniformRandom{}, 10},
		{"mild (σ=0.20)", deploy.Clustered{Clusters: 5, Spread: 0.20}, 10},
		{"strong (σ=0.10)", deploy.Clustered{Clusters: 5, Spread: 0.10}, 10},
		{"extreme (σ=0.05)", deploy.Clustered{Clusters: 4, Spread: 0.05}, 10},
	}
	if o.Quick {
		spreads = spreads[:2]
	}
	g := geom.NewSquareGrid(8, 100)
	// Per-trial task result; the per-spread row aggregates these in trial
	// order. The nested fan-out is safe: the pool is a shared semaphore and
	// the submitting task always works through its own sub-tasks.
	type trialResult struct {
		connected, occOK, spans, censusOK bool
		depth                             int
		treeEnergy, directEnergy          int64
	}
	sweep(o, tab, len(spreads), func(si int) rows {
		sp := spreads[si]
		results := parallel.Map(o.Pool, sp.trials, func(trial int) trialResult {
			rng := rand.New(rand.NewSource(int64(trial)*7 + 3))
			nw := deploy.New(256, g.Terrain, 18, sp.place, rng)
			if !nw.Connected() {
				return trialResult{} // tree and grid both need connectivity; skip
			}
			out := trialResult{connected: true, occOK: nw.OccupancyOK(g)}
			l := cost.NewLedger(cost.NewUniform(), nw.N())
			med := radio.NewMedium(nw, sim.New(), l, rand.New(rand.NewSource(int64(trial)+500)), radio.Config{})
			med.SetTracer(o.Trace)
			p := vtree.New(med)
			m := p.Build(0)
			out.spans = m.Reached == nw.N()
			out.depth = m.MaxDepth
			before := l.Total()
			count, _ := p.Aggregate(func(int) int64 { return 1 }, func(a, b int64) int64 { return a + b })
			out.censusOK = count == int64(nw.N())
			out.treeEnergy = int64(l.Total() - before)
			for id := 0; id < nw.N(); id++ {
				out.directEnergy += int64(p.Depth(id)) * 2
			}
			return out
		})
		occOK, spans, censusOK := 0, 0, 0
		maxDepth := 0
		var treeEnergy, directEnergy int64
		measured := 0
		for _, r := range results {
			if !r.connected {
				continue
			}
			measured++
			if r.occOK {
				occOK++
			}
			if r.spans {
				spans++
			}
			if r.depth > maxDepth {
				maxDepth = r.depth
			}
			if r.censusOK {
				censusOK++
			}
			treeEnergy += r.treeEnergy
			directEnergy += r.directEnergy
		}
		if measured == 0 {
			return rows{{sp.name, "-", "-", "-", "-", "-", "-"}}
		}
		return rows{{sp.name,
			fmt.Sprintf("%d/%d", occOK, measured),
			fmt.Sprintf("%d/%d", spans, measured),
			maxDepth,
			fmt.Sprintf("%d/%d", censusOK, measured),
			treeEnergy / int64(measured), directEnergy / int64(measured)}}
	})
	return tab
}

// E13LossyEmulation measures the Section 5.1 protocol under an unreliable
// radio: how many periodic re-executions ("the above protocol should
// execute periodically") a lossy network needs before every routing table
// is complete, and what the redundancy of dense deployments buys. It also
// reports the flooding baseline's cost for injecting one query into the
// same network, the unstructured comparator for every structured scheme.
func E13LossyEmulation(o Options) *stats.Table {
	tab := stats.NewTable("E13: emulation under radio loss (4x4 grid, 8 nodes/cell)",
		"loss", "complete after Run", "reinforce rounds", "total bcasts", "flood forwards", "flood energy")
	losses := []float64{0, 0.2, 0.4, 0.6, 0.8}
	if o.Quick {
		losses = losses[:2]
	}
	sweep(o, tab, len(losses), func(i int) rows {
		loss := losses[i]
		g := geom.NewSquareGrid(4, 40)
		rng := rand.New(rand.NewSource(61))
		nw, _, err := deploy.Generate(128, g, 11, deploy.UniformRandom{}, rng, 200)
		if err != nil {
			panic(err)
		}
		l := cost.NewLedger(cost.NewUniform(), nw.N())
		med := radio.NewMedium(nw, sim.New(), l, rand.New(rand.NewSource(62)), radio.Config{Loss: loss})
		p := vtopo.New(med, g)
		m := p.Run()
		firstComplete := m.Complete
		rounds := 0
		for !m.Complete && rounds < 50 {
			m = p.Reinforce()
			rounds++
		}
		// Flooding baseline on the same (lossy) medium: repeat until every
		// node has heard the query at least once or 10 attempts passed.
		fl := flood.New(med)
		covered := map[int]bool{0: true}
		fl.Deliver = func(node int, _ any) { covered[node] = true }
		var forwards int64
		floodBefore := l.Metrics().Total
		for attempt := 0; attempt < 10 && len(covered) < nw.N(); attempt++ {
			fm := fl.Flood(0, 2, "query")
			forwards += fm.Forwards
		}
		return rows{{loss, firstComplete, rounds, m.Broadcasts,
			forwards, int64(l.Metrics().Total - floodBefore)}}
	})
	return tab
}

// E16WholeApp closes the correspondence loop at application granularity:
// the same synthesized labeling round runs on the virtual machine (the
// designer's analysis) and on the assembled physical runtime (emulated
// topology + elected leaders), and the table reports the whole-round
// energy, completion, and the physical/virtual inflation — the end-to-end
// version of E8's per-message check.
func E16WholeApp(o Options) *stats.Table {
	tab := stats.NewTable("E16: whole-application correspondence (virtual vs physical runtime)",
		"grid", "nodes/cell", "regions", "virt energy", "phys energy", "phys/virt", "virt t", "phys t", "same result")
	cases := []struct {
		side, perCell int
		seed          int64
	}{
		{4, 6, 3}, {4, 10, 5}, {8, 6, 7},
	}
	if o.Quick {
		cases = cases[:1]
	}
	sweep(o, tab, len(cases), func(i int) rows {
		tc := cases[i]
		g := geom.NewSquareGrid(tc.side, float64(tc.side)*10)
		rng := rand.New(rand.NewSource(tc.seed))
		nw, _, err := deploy.Generate(tc.side*tc.side*tc.perCell, g, g.CellSide()*1.25, deploy.UniformRandom{}, rng, 200)
		if err != nil {
			panic(err)
		}
		physLedger := cost.NewLedger(cost.NewUniform(), nw.N())
		med := radio.NewMedium(nw, sim.New(), physLedger, rand.New(rand.NewSource(tc.seed+1)), radio.Config{})
		proto := vtopo.New(med, g)
		if m := proto.Run(); !m.Complete {
			panic("experiments: emulation incomplete")
		}
		bnd, _, err := binding.Bind(med, g, binding.MinDistance{Network: nw, Grid: g})
		if err != nil {
			panic(err)
		}
		h := varch.MustHierarchy(g)
		pm, err := emul.New(h, proto, bnd, med)
		if err != nil {
			panic(err)
		}
		fmap := field.Threshold(field.RandomBlobs(2, g.Terrain,
			g.Terrain.Width()/6, g.Terrain.Width()/4, rand.New(rand.NewSource(tc.seed+9))), g, 0.5, 0)

		setupEnergy := physLedger.Metrics().Total
		physRes, err := pm.RunLabeling(fmap)
		if err != nil {
			panic(err)
		}
		physEnergy := int64(physLedger.Metrics().Total - setupEnergy)

		virtLedger := cost.NewLedger(cost.NewUniform(), g.N())
		virtRes, err := synth.RunOnMachine(varch.NewMachine(h, sim.New(), virtLedger), fmap)
		if err != nil {
			panic(err)
		}
		return rows{{fmt.Sprintf("%dx%d", tc.side, tc.side), tc.perCell,
			virtRes.Final.Count(),
			int64(virtLedger.Metrics().Total), physEnergy,
			stats.Ratio(float64(physEnergy), float64(virtLedger.Metrics().Total)),
			int64(virtRes.Completion), int64(physRes.Completion),
			physRes.Final.Equal(virtRes.Final)}}
	})
	return tab
}

// E10Churn reproduces the Section 5.1 maintenance claim ("the above
// protocol should execute periodically" to handle joins and failures):
// the message cost of incremental repair after node failures versus a full
// re-execution, swept over the number of simultaneous failures.
func E10Churn(o Options) *stats.Table {
	tab := stats.NewTable("E10: emulation maintenance under churn (4x4 grid, 10 nodes/cell)",
		"failures", "full bcasts", "repair bcasts", "repair/full", "repair time", "complete")
	failures := []int{1, 2, 5, 10}
	if o.Quick {
		failures = failures[:2]
	}
	sweep(o, tab, len(failures), func(i int) rows {
		kills := failures[i]
		nw, g, med, _ := physSetup(4, 10, 11, int64(kills)*41)
		p := vtopo.New(med, g)
		full := p.Run()
		if !full.Complete {
			panic("experiments: initial emulation incomplete")
		}
		// Kill nodes from crowded cells so occupancy survives.
		members := nw.CellMembers(g)
		var victims []int
		for _, m := range members {
			if len(victims) >= kills {
				break
			}
			if len(m) >= 5 {
				victims = append(victims, m[0])
			}
		}
		p.Kill(victims...)
		rep := p.RepairIncremental()
		repairB := rep.Broadcasts - full.Broadcasts
		return rows{{len(victims), full.Broadcasts, repairB,
			stats.Ratio(float64(repairB), float64(full.Broadcasts)),
			int64(rep.SetupTime), rep.Complete}}
	})
	return tab
}
