package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"wsnva/internal/binding"
	"wsnva/internal/churn"
	"wsnva/internal/cost"
	"wsnva/internal/deploy"
	"wsnva/internal/emul"
	"wsnva/internal/fault"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/radio"
	"wsnva/internal/shard"
	"wsnva/internal/sim"
	"wsnva/internal/stats"
	"wsnva/internal/varch"
	"wsnva/internal/vtopo"
)

// e23Horizon is the churn window for the E23 sweep: long enough for the
// slowest Poisson rate to land a handful of disturbance batches, short
// enough that the quick table stays fast.
const e23Horizon = sim.Time(400)

// churnStack builds the standard physical stack for a churn mission —
// side×side grid, perCell nodes per cell, fixed seeds — and returns the
// emulation machine, a blob workload on the machine's own grid (RunChurn
// insists map and hierarchy share the grid object), and the deployment
// size.
func churnStack(side, perCell int, seed int64) (*emul.Machine, *field.BinaryMap, int) {
	g := geom.NewSquareGrid(side, float64(side)*10)
	rng := rand.New(rand.NewSource(seed))
	nw, _, err := deploy.Generate(side*side*perCell, g, g.CellSide()*1.25, deploy.UniformRandom{}, rng, 200)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	med := radio.NewMedium(nw, sim.New(), cost.NewLedger(cost.NewUniform(), nw.N()),
		rand.New(rand.NewSource(seed+1)), radio.Config{})
	proto := vtopo.New(med, g)
	if m := proto.Run(); !m.Complete {
		panic("experiments: emulation incomplete")
	}
	bnd, _, err := binding.Bind(med, g, binding.MinDistance{Network: nw, Grid: g})
	if err != nil {
		panic(err)
	}
	pm, err := emul.New(varch.MustHierarchy(g), proto, bnd, med)
	if err != nil {
		panic(err)
	}
	fmap := field.Threshold(field.RandomBlobs(2, g.Terrain,
		g.Terrain.Width()/6, g.Terrain.Width()/4, rand.New(rand.NewSource(seed+10))), g, 0.5, 0)
	return pm, fmap, nw.N()
}

// E23ChurnRepair sweeps the Poisson churn rate against the incremental
// repair engine (emul.RunChurn): each row is one mission on a fresh
// stack, reporting how many disturbance batches landed, how many radios
// actually flipped, what the repair cost (routing-table rebroadcasts and
// touched cells), and the worst re-convergence latency. The claims the
// table witnesses: repair traffic grows with the number of flips — not
// with the network size, which is constant down a column — the recovery
// predicate holds at every rate, and the final labeling round still
// covers the whole grid. Everything is a pure function of the seeds, so
// the quick table is pinned by a golden CSV.
func E23ChurnRepair(o Options) *stats.Table {
	tab := stats.NewTable("E23: incremental repair cost and re-convergence latency vs churn rate (Poisson sleep/wake)",
		"side", "nodes", "rate", "batches", "flips", "cells", "repair msgs", "msgs/flip", "max latency", "recovered", "rounds", "final cov")

	sidesList := []int{4, 8}
	perCell := 5
	rates := []float64{0, 0.02, 0.05, 0.1, 0.2}
	if o.Quick {
		sidesList = []int{4}
		rates = []float64{0, 0.05, 0.2}
	}

	type trial struct {
		side int
		rate float64
	}
	var trials []trial
	for _, s := range sidesList {
		for _, r := range rates {
			trials = append(trials, trial{s, r})
		}
	}
	sweep(o, tab, len(trials), func(i int) rows {
		tr := trials[i]
		pm, fmap, n := churnStack(tr.side, perCell, 11)
		var sched churn.Schedule
		if tr.rate > 0 {
			sched = churn.Poisson(n, tr.rate, e23Horizon, 23)
			// Close the mission by waking whatever the Poisson process left
			// asleep, so the final labeling round measures the repaired
			// network rather than the residual sleep set.
			down := make(map[int]bool)
			for _, ev := range sched {
				down[ev.Node] = ev.Op.Down()
			}
			var wake []int
			for node := 0; node < n; node++ {
				if down[node] {
					wake = append(wake, node)
				}
			}
			if len(wake) > 0 {
				sched = churn.Merge(sched, churn.Arrivals(e23Horizon+1, wake...))
			}
		}
		out, err := pm.RunChurn(emul.ChurnConfig{
			Schedule:   sched,
			Map:        fmap,
			RoundEvery: 4,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: E23 side=%d rate=%v: %v", tr.side, tr.rate, err))
		}
		flips, cells := 0, 0
		for _, d := range out.Disturbances {
			flips += d.Flipped
			cells += d.Cells
		}
		perFlip := 0.0
		if flips > 0 {
			perFlip = float64(out.RepairMsgs) / float64(flips)
		}
		return rows{{tr.side, n, tr.rate, len(out.Disturbances), flips, cells,
			out.RepairMsgs, perFlip, int64(out.MaxLatency),
			out.AllRecovered, out.Rounds, out.FinalCoverage}}
	})
	return tab
}

// E24ChurnShardScaling extends the E22 hazard ladder with duty-cycle
// churn: the dissemination workload under a Poisson sleep/wake schedule,
// alone and combined with a lossy channel and mid-run crashes, across
// the (shards, workers) ladder. Churn transitions are cross-shard events
// — each lands on its node's owner shard inside the conservative window
// protocol — and the match column witnesses that every shard count
// reproduces the single-kernel oracle's checksum exactly, suspends and
// resumes included. Wall and malloc readings are process measurements,
// as in E21/E22, so this table is excluded from the golden-table tests.
func E24ChurnShardScaling(o Options) *stats.Table {
	tab := stats.NewTable("E24: sharded kernel scaling under churn — Poisson sleep/wake as cross-shard events",
		"nodes", "hazard", "shards", "workers", "wall ms", "suspends", "resumes", "drops", "speedup", "match", "checksum")

	grids := []int{2000, 8000}
	floods := 16
	configs := []e21cfg{{1, 1}, {2, 2}, {4, 4}, {8, 4}}
	if o.Quick {
		grids = []int{600}
		floods = 8
		configs = []e21cfg{{1, 1}, {4, 2}}
	}
	if o.Shards > 0 {
		configs = []e21cfg{{1, 1}, {o.Shards, 0}}
	}

	for _, n := range grids {
		nw := e21net(n)
		// The Poisson rate scales with the network (n/100 expected
		// transitions per time unit over an 80-tick window), so the
		// disturbance is a constant fraction of the deployment at every
		// grid size — churn that stayed at a fixed absolute rate would
		// vanish relative to an 8000-node run.
		sched := churn.Poisson(n, float64(n)/100, 80, 7)
		scenarios := []struct {
			name string
			cfg  shard.Config
		}{
			{"poisson n/100", shard.Config{
				Churn: sched,
			}},
			{"churn+loss+crash", shard.Config{
				Churn:   sched,
				Loss:    0.1,
				Seed:    7,
				Crashes: fault.MustRandom(n, 0.03, 50, 7),
			}},
		}
		for _, sc := range scenarios {
			var base float64
			var oracle uint64
			for i, c := range configs {
				cfg := sc.cfg
				cfg.Shards, cfg.Workers = c.shards, c.workers
				cfg.Floods, cfg.PktSize = floods, 2
				runtime.GC()
				t0 := time.Now()
				res, err := shard.Run(nw, cfg)
				wall := time.Since(t0)
				if err != nil {
					panic(fmt.Sprintf("experiments: E24 n=%d %s shards=%d: %v", n, sc.name, c.shards, err))
				}
				ms := float64(wall.Nanoseconds()) / 1e6
				if i == 0 {
					base = ms
					oracle = res.Checksum()
				}
				tab.AddRow(n, sc.name, c.shards, c.workers, ms,
					res.Suspends, res.Resumes, res.Dropped,
					stats.Ratio(base, ms),
					res.Checksum() == oracle,
					fmt.Sprintf("%016x", res.Checksum()))
			}
		}
	}
	return tab
}
