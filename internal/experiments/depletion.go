package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wsnva/internal/battery"
	"wsnva/internal/binding"
	"wsnva/internal/cost"
	"wsnva/internal/deploy"
	"wsnva/internal/emul"
	"wsnva/internal/fault"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/radio"
	"wsnva/internal/sim"
	"wsnva/internal/stats"
	"wsnva/internal/synth"
	"wsnva/internal/trace"
	"wsnva/internal/varch"
	"wsnva/internal/vtopo"
)

// The depletion family (E19, E20) measures the battery subsystem end to
// end: nodes die because of the energy they spend, not because a schedule
// said so. E19 runs whole missions on the physical stack and compares
// static executors against residual-energy rotation — the paper's
// Section 5.2 rotation remark turned into a lifetime measurement. E20 runs
// single DES rounds and shows the flip side of reliability: under loss,
// ARQ retransmissions buy delivery with battery, so the same budget
// depletes more nodes sooner. Every row is byte-deterministic.

// e19Budgets is the per-node budget sweep for the lifetime missions,
// calibrated so the hottest executor (≈40 energy units per round on the
// 4×4/5-per-cell stack) dies within a bounded mission at every point.
var e19Budgets = []cost.Energy{200, 400, 800, 1600}

// e19MaxRounds bounds a mission; generous against the largest budget.
// e19RotateEvery is the rotation epoch in rounds (LEACH-style periodic
// re-election rather than a per-round one, so the election's own radio
// traffic stays small next to the duty it redistributes).
// e19LeaderDuty is the per-round standing charge of the executor role (see
// emul.LifetimeConfig.LeaderDuty), sized to dominate a follower's per-round
// traffic the way a cluster head's always-on receiver dominates a sleeping
// member's radio bill.
const (
	e19MaxRounds   = 400
	e19RotateEvery = 4
	e19LeaderDuty  = 60
)

// lifetimeMission builds the standard physical stack (4×4 grid, 5 nodes
// per cell, fixed seeds — setup traffic does not count against budgets)
// and runs one depletion mission on it. tr, when non-nil, observes the
// medium, the ledger, the bank, and the virtual plane — but only from the
// mission onward (the tracer is attached after setup, matching the
// budgets' sunk-cost convention).
func lifetimeMission(budget cost.Energy, rotate bool, tr *trace.Tracer) (*emul.LifetimeOutcome, *cost.Ledger) {
	const side, perCell = 4, 5
	g := geom.NewSquareGrid(side, float64(side)*10)
	rng := rand.New(rand.NewSource(11))
	nw, _, err := deploy.Generate(side*side*perCell, g, g.CellSide()*1.25, deploy.UniformRandom{}, rng, 200)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	l := cost.NewLedger(cost.NewUniform(), nw.N())
	med := radio.NewMedium(nw, sim.New(), l, rand.New(rand.NewSource(12)), radio.Config{})
	proto := vtopo.New(med, g)
	if m := proto.Run(); !m.Complete {
		panic("experiments: emulation incomplete")
	}
	// Both modes run the identical initial election, so their pre-mission
	// state matches charge for charge; they diverge only in what happens
	// between rounds.
	var rot *binding.Rotator
	var bnd *binding.Binding
	if rotate {
		rot, err = binding.NewRotator(med, g, l)
		if err != nil {
			panic(err)
		}
		bnd = rot.Current()
	} else {
		bnd, _, err = binding.Bind(med, g, binding.MinDistance{Network: nw, Grid: g})
		if err != nil {
			panic(err)
		}
	}
	pm, err := emul.New(varch.MustHierarchy(g), proto, bnd, med)
	if err != nil {
		panic(err)
	}
	fmap := field.Threshold(field.RandomBlobs(2, g.Terrain,
		g.Terrain.Width()/6, g.Terrain.Width()/4, rand.New(rand.NewSource(21))), g, 0.5, 0)
	bank := battery.Uniform(nw.N(), budget)
	if tr != nil {
		pm.SetTracer(tr)
		med.SetTracer(tr)
		l.SetTracer(tr, med.Kernel().Now)
		bank.SetTracer(tr, med.Kernel().Now)
	}
	out, err := pm.RunLifetime(emul.LifetimeConfig{
		Map:       fmap,
		Bank:      bank,
		Rotator:   rot,
		// Rotating every round would spend more on elections (one broadcast
		// plus k-1 receptions per member) than the leveling recovers; a
		// 4-round epoch amortizes the exchange below the noise floor.
		RotateEvery: e19RotateEvery,
		LeaderDuty:  e19LeaderDuty,
		MaxRounds:   e19MaxRounds,
	})
	if err != nil {
		panic(err)
	}
	return out, l
}

// E19NetworkLifetime sweeps the per-node budget for static executors and
// residual-energy rotation, reporting when the product stops arriving. The
// trends to verify: lifetime (rounds, first death) is monotone in budget
// within a mode, and rotation's first death is never earlier than the
// static mode's at the same budget — the rotation-extends-lifetime claim
// of the LEACH lineage, emerging from the cost model alone.
func E19NetworkLifetime(o Options) *stats.Table {
	tab := stats.NewTable("E19: network lifetime vs battery budget (4x4 grid, 5 nodes/cell, static vs rotation)",
		"budget", "mode", "rounds", "first death rd", "first death t", "root death rd",
		"cov@death", "final cov", "depleted", "distinct leaders", "rebinds")
	budgets := e19Budgets
	if o.Quick {
		// The upper half of the sweep: budgets large enough for rotation
		// epochs to fire before the first death, where the lifetime gain is
		// strict rather than a tie — the rows the golden file should pin.
		budgets = budgets[2:]
	}
	modes := []bool{false, true}
	sweep(o, tab, len(budgets)*len(modes), func(i int) rows {
		budget := budgets[i/len(modes)]
		rotate := modes[i%len(modes)] // static row first, rotation second
		out, _ := lifetimeMission(budget, rotate, o.Trace)
		mode := "static"
		if rotate {
			mode = "rotate"
		}
		return rows{{int64(budget), mode, out.Rounds, out.FirstDeathRound, int64(out.FirstDeathTime),
			out.RootDeathRound, out.CoverageAtFirstDeath, out.FinalCoverage,
			out.Depleted, out.DistinctLeaders, out.LeaderChanges}}
	})
	return tab
}

// e20Channel is one loss model of the E20 sweep.
type e20Channel struct {
	name  string
	loss  float64 // Bernoulli rate; ignored when burst is non-nil
	burst *fault.GilbertElliott
}

// e20Channels pairs Bernoulli points against a Gilbert–Elliott burst
// channel of comparable stationary rate, so the table separates "how much
// is lost" from "how the losses cluster".
func e20Channels() []e20Channel {
	burst := fault.DefaultBurst()
	return []e20Channel{
		{"bern", 0.10, nil},
		{"bern", 0.20, nil},
		{"bern", 0.30, nil},
		{"burst", burst.MeanLoss(), &burst},
	}
}

// E20DepletionARQ shows reliability's energy bill coming due: one DES
// labeling round per row on the 8×8 grid, no scheduled crashes — every
// death is a depletion. At a fixed budget, turning the ARQ on converts
// losses into retransmissions and acknowledgments, which drains batteries
// faster: depleted counts rise (and first depletion moves earlier) with
// the loss rate, and the bursty channel is harsher than the Bernoulli
// channel of similar mean rate because retries land inside the same fade.
func E20DepletionARQ(o Options) *stats.Table {
	tab := stats.NewTable("E20: ARQ under loss accelerates depletion (8x8 grid, deaths from batteries only)",
		"channel", "loss", "arq", "budget", "depleted", "first depl t", "delivered",
		"lost", "retrans", "coverage", "energy")
	chans := e20Channels()
	budgets := []cost.Energy{100, 200}
	if o.Quick {
		chans = []e20Channel{chans[1], chans[3]}
		budgets = budgets[:1]
	}
	arqs := []fault.Reliability{{}, fault.DefaultReliability()}
	sweep(o, tab, len(chans)*len(arqs)*len(budgets), func(i int) rows {
		ch := chans[i/(len(arqs)*len(budgets))]
		rel := arqs[(i/len(budgets))%len(arqs)]
		budget := budgets[i%len(budgets)]
		n := 8 * 8
		cfg := synth.FaultConfig{
			Reliability: rel,
			Battery:     battery.Uniform(n, budget),
		}
		if ch.burst != nil {
			cfg.Burst = ch.burst
			cfg.BurstSeed = 97
		} else {
			cfg.Loss = ch.loss
			cfg.LossSeed = 41
		}
		res, vm := faultRound(8, 7, cfg, o.Trace)
		arqLabel := "off"
		if rel.Enabled() {
			arqLabel = "on"
		}
		firstDepl := any("-")
		if res.Depleted > 0 {
			firstDepl = int64(res.FirstDepletion)
		}
		return rows{{ch.name, math.Round(ch.loss*1000) / 1000, arqLabel, int64(budget),
			res.Depleted, firstDepl, res.Stats.Delivered, res.Stats.Lost,
			res.Stats.Retransmissions, res.Coverage, vm.Ledger().Total()}}
	})
	return tab
}

// depletionSoakRound is one randomized-but-seeded invariant check shared
// by the soak test and make soak: a DES round with batteries, loss, and
// ARQ, asserting the closed loop's safety properties (dead nodes frozen,
// ledger/bank agreement, depletion count consistency).
func depletionSoakRound(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	budget := cost.Energy(40 + rng.Int63n(200))
	loss := rng.Float64() * 0.3
	rel := fault.Reliability{}
	if rng.Intn(2) == 1 {
		rel = fault.DefaultReliability()
	}
	n := 8 * 8
	bank := battery.Uniform(n, budget)
	res, vm := faultRound(8, 7, synth.FaultConfig{
		Loss:        loss,
		LossSeed:    seed * 3,
		Reliability: rel,
		Battery:     bank,
	}, nil)
	if res.Depleted != bank.Deaths() {
		return fmt.Errorf("seed %d: result counted %d depletions, bank %d", seed, res.Depleted, bank.Deaths())
	}
	led := vm.Ledger()
	for node := 0; node < n; node++ {
		if led.Energy(node) != bank.Drained(node) {
			return fmt.Errorf("seed %d: node %d ledger %d != bank drain %d (a charge bypassed the meter or landed after death)",
				seed, node, led.Energy(node), bank.Drained(node))
		}
		if !bank.Depleted(node) && bank.Drained(node) > budget {
			return fmt.Errorf("seed %d: node %d over budget (%d > %d) but not depleted", seed, node, bank.Drained(node), budget)
		}
	}
	return nil
}
