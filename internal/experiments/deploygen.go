package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"wsnva/internal/deploy"
	"wsnva/internal/geom"
	"wsnva/internal/parallel"
	"wsnva/internal/stats"
)

// E26DeployGeneration measures the deployment pipeline the sharded kernel
// feeds on: flat-CSR neighbor construction (build rows — placement + CSR,
// no validation) and full qualification via GenerateSeeded (gen rows —
// placement + CSR + the union-find/bitset predicate suite), sequential
// versus parallel, at constant per-cell density up to a million nodes.
// The match column deep-compares the parallel result against the
// sequential one — positions, offsets, and the flat neighbor array must
// be byte-identical, so the speedup is never bought with divergence.
//
// Like E21/E22 the wall and malloc columns are measurements of this
// process, so the table is excluded from the golden-table tests, and rows
// run sequentially off the options pool. The parallel rows use a fixed
// 4-worker pool regardless of the host: on a single-core container they
// record the fan-out overhead (the E21 precedent), on ≥4 cores the
// speedup. Generation rows stop at the quarter-million tier — generation
// is build + a validation pass that the build rows already bound, and the
// million-node build rows are the numbers the ROADMAP item asked for.
func E26DeployGeneration(o Options) *stats.Table {
	tab := stats.NewTable("E26: deployment generation at scale — parallel CSR construction and allocation-free validation (constant density ≈16 nodes/cell)",
		"nodes", "side", "mode", "wall ms", "mallocs", "speedup", "match")

	type tier struct{ n, side int }
	buildTiers := []tier{{65536, 64}, {262144, 128}, {1048576, 256}}
	genTiers := []tier{{65536, 64}, {262144, 128}}
	if o.Quick {
		buildTiers = []tier{{4096, 16}, {16384, 32}}
		genTiers = []tier{{4096, 16}}
	}
	pool := parallel.New(4)

	measure := func(fn func()) (ms float64, mallocs int64) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		fn()
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		return float64(wall.Nanoseconds()) / 1e6, int64(after.Mallocs - before.Mallocs)
	}

	for _, tr := range buildTiers {
		g := geom.NewSquareGrid(tr.side, float64(tr.side)*10)
		txRange := g.CellSide() * 1.2
		seed := parallel.TaskSeed("E26-build", tr.side, 0)
		var seq, par *deploy.Network
		seqMS, seqAllocs := measure(func() {
			seq = deploy.NewWithPool(tr.n, g.Terrain, txRange, deploy.UniformRandom{},
				rand.New(rand.NewSource(seed)), nil)
		})
		tab.AddRow(tr.n, tr.side, "build-seq", seqMS, seqAllocs, stats.Ratio(seqMS, seqMS), true)
		parMS, parAllocs := measure(func() {
			par = deploy.NewWithPool(tr.n, g.Terrain, txRange, deploy.UniformRandom{},
				rand.New(rand.NewSource(seed)), pool)
		})
		tab.AddRow(tr.n, tr.side, "build-par", parMS, parAllocs, stats.Ratio(seqMS, parMS), sameDeployment(seq, par))
		seq, par = nil, nil
	}

	for _, tr := range genTiers {
		g := geom.NewSquareGrid(tr.side, float64(tr.side)*10)
		txRange := g.CellSide() * 1.2
		seed := parallel.TaskSeed("E26-gen", tr.side, 0)
		var seqNW, parNW *deploy.Network
		var seqA, parA int
		seqMS, seqAllocs := measure(func() {
			var err error
			seqNW, seqA, err = deploy.GenerateSeeded(tr.n, g, txRange, deploy.UniformRandom{}, seed, 4, nil)
			if err != nil {
				panic(fmt.Sprintf("experiments: E26 gen-seq n=%d: %v", tr.n, err))
			}
		})
		tab.AddRow(tr.n, tr.side, "gen-seq", seqMS, seqAllocs, stats.Ratio(seqMS, seqMS), true)
		parMS, parAllocs := measure(func() {
			var err error
			parNW, parA, err = deploy.GenerateSeeded(tr.n, g, txRange, deploy.UniformRandom{}, seed, 4, pool)
			if err != nil {
				panic(fmt.Sprintf("experiments: E26 gen-par n=%d: %v", tr.n, err))
			}
		})
		tab.AddRow(tr.n, tr.side, "gen-par", parMS, parAllocs, stats.Ratio(seqMS, parMS),
			seqA == parA && sameDeployment(seqNW, parNW))
		seqNW, parNW = nil, nil
	}
	return tab
}

// sameDeployment deep-compares two networks: node table, position views,
// CSR offsets, and the flat neighbor array.
func sameDeployment(a, b *deploy.Network) bool {
	if a.N() != b.N() || a.Range != b.Range || a.Terrain != b.Terrain {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	aOff, aAdj := a.CSRView()
	bOff, bAdj := b.CSRView()
	if len(aOff) != len(bOff) || len(aAdj) != len(bAdj) {
		return false
	}
	for i := range aOff {
		if aOff[i] != bOff[i] {
			return false
		}
	}
	for i := range aAdj {
		if aAdj[i] != bAdj[i] {
			return false
		}
	}
	return true
}
