package synth

import (
	"fmt"

	"wsnva/internal/geom"
	"wsnva/internal/program"
	"wsnva/internal/varch"
)

// The third synthesized application: target tracking, the example
// application paper Figure 1 itself annotates the methodology with.
// Nodes that detect the target (signal strength above threshold) send
// weighted reports up the group hierarchy; every leader accumulates the
// weighted-centroid moments (Σw·x, Σw·y, Σw) for its block, and the root's
// moments yield the network's position estimate. Like the alarm program it
// is event-driven: nodes out of detection range cost nothing beyond the
// sample.

// TrackReport is the tracking message: centroid moments for the reporting
// subtree, in milli-units to stay integral, plus the merge level.
type TrackReport struct {
	WX, WY, W int64 // Σ w·x, Σ w·y, Σ w (w in milli-units)
	Level     int
}

// trackMsgSize is the cost-model size of one report: three moments.
const trackMsgSize = 3

// TrackingConfig parameterizes the synthesized tracking program for one
// node.
type TrackingConfig struct {
	Hier  *varch.Hierarchy
	Coord geom.Coord
	// Strength returns the node's detection strength in [0,1]; zero means
	// no detection and no traffic.
	Strength func() float64
}

// Tracking program state variable names.
const (
	VarTrackWX = "trackWX"
	VarTrackWY = "trackWY"
	VarTrackW  = "trackW"
)

// TrackingProgram synthesizes the per-node tracking program.
func TrackingProgram(cfg TrackingConfig) *program.Spec {
	h := cfg.Hier
	me := cfg.Coord
	maxLevel := h.Levels
	spec := &program.Spec{
		Title: fmt.Sprintf("track@%v", me),
		Init: func(e *program.Env) {
			e.Bools[VarStart] = true
			e.Objs[VarTrackWX] = make([]int64, maxLevel+1)
			e.Objs[VarTrackWY] = make([]int64, maxLevel+1)
			e.Objs[VarTrackW] = make([]int64, maxLevel+1)
			e.Objs[VarOutbox] = []TrackReport(nil)
		},
	}
	moments := func(e *program.Env) (wx, wy, w []int64) {
		return e.Objs[VarTrackWX].([]int64), e.Objs[VarTrackWY].([]int64), e.Objs[VarTrackW].([]int64)
	}
	merge := func(e *program.Env, r TrackReport) {
		wx, wy, w := moments(e)
		wx[r.Level] += r.WX
		wy[r.Level] += r.WY
		w[r.Level] += r.W
		if r.Level < maxLevel {
			up := r
			up.Level = r.Level + 1
			e.Objs[VarOutbox] = append(e.Objs[VarOutbox].([]TrackReport), up)
		}
	}

	spec.Rules = []program.Rule{
		{
			Name:      "start",
			Condition: "start = true",
			Effect:    "sense; if detecting: emit report {w·x, w·y, w}",
			Guard:     func(e *program.Env) bool { return e.Bools[VarStart] },
			Action: func(e *program.Env, fx program.Effector) {
				e.Bools[VarStart] = false
				fx.Sense(1)
				s := cfg.Strength()
				if s <= 0 {
					return
				}
				fx.Compute(1)
				w := int64(s * 1000)
				if w == 0 {
					w = 1
				}
				merge(e, TrackReport{
					WX: w * int64(me.Col), WY: w * int64(me.Row), W: w, Level: 0,
				})
			},
		},
		{
			Name:      "receive",
			Condition: "received mTrack = {wx, wy, w, mrecLevel}",
			Effect:    "moments[mrecLevel] += report\nqueue report for Leader(mrecLevel+1)",
			Guard: func(e *program.Env) bool {
				_, ok := e.PeekMsg().(TrackReport)
				return ok
			},
			Action: func(e *program.Env, fx program.Effector) {
				r := e.TakeMsg().(TrackReport)
				fx.Compute(trackMsgSize)
				merge(e, r)
			},
		},
		{
			Name:      "forward",
			Condition: "outbox not empty",
			Effect:    "pop report; local merge if I lead its level, else send",
			Guard:     func(e *program.Env) bool { return len(e.Objs[VarOutbox].([]TrackReport)) > 0 },
			Action: func(e *program.Env, fx program.Effector) {
				box := e.Objs[VarOutbox].([]TrackReport)
				r := box[0]
				e.Objs[VarOutbox] = box[1:]
				if h.LeaderAt(me, r.Level) == me {
					merge(e, r)
					return
				}
				fx.Send(r.Level, trackMsgSize, r)
			},
		},
	}
	return spec
}

// TrackEstimate is one epoch's position estimate in grid-cell coordinates.
type TrackEstimate struct {
	Valid     bool    // false when nothing detected the target
	Col, Row  float64 // weighted centroid in cell units
	Weight    float64 // total detection mass
	Detectors int     // nodes that reported
	RuleCount int64
}

// RunTrackingEpoch runs one tracking round on the machine: every node
// samples once, reports flow up, and the root's accumulated moments give
// the estimate.
func RunTrackingEpoch(vm *varch.Machine, strength func(c geom.Coord) float64) (*TrackEstimate, error) {
	h := vm.Hier
	g := h.Grid
	insts := make([]*program.Instance, g.N())
	detectors := 0
	for _, c := range g.Coords() {
		c := c
		fx := &trackFx{vm: vm, coord: c}
		s := strength(c)
		if s > 0 {
			detectors++
		}
		spec := TrackingProgram(TrackingConfig{
			Hier: h, Coord: c, Strength: func() float64 { return s },
		})
		inst := program.NewInstance(spec, fx)
		insts[g.Index(c)] = inst
		vm.Handle(c, func(msg varch.Message) {
			inst.OnMessage(msg.Payload, maxQuiescenceSteps)
		})
	}
	for _, inst := range insts {
		inst.RunToQuiescence(maxQuiescenceSteps)
	}
	vm.Kernel().Run()

	est := &TrackEstimate{Detectors: detectors}
	for _, inst := range insts {
		est.RuleCount += inst.Fired()
	}
	rootEnv := insts[g.Index(h.Root())].Env
	wx := rootEnv.Objs[VarTrackWX].([]int64)[h.Levels]
	wy := rootEnv.Objs[VarTrackWY].([]int64)[h.Levels]
	w := rootEnv.Objs[VarTrackW].([]int64)[h.Levels]
	if w > 0 {
		est.Valid = true
		est.Col = float64(wx) / float64(w)
		est.Row = float64(wy) / float64(w)
		est.Weight = float64(w) / 1000
	}
	// The moments have been copied out above; nothing retains the instances
	// or their Envs past this point, so they go back to the pool.
	for _, inst := range insts {
		inst.Release()
	}
	return est, nil
}

// trackFx adapts the machine to the tracking program; tracking exfiltrates
// nothing — the driver reads the root's moments after quiescence.
type trackFx struct {
	vm    *varch.Machine
	coord geom.Coord
}

func (f *trackFx) Send(level int, size int64, payload any) {
	f.vm.SendToLeader(f.coord, level, size, payload)
}
func (f *trackFx) Exfiltrate(any)      {}
func (f *trackFx) Compute(units int64) { f.vm.Compute(f.coord, units) }
func (f *trackFx) Sense(units int64)   { f.vm.Sense(f.coord, units) }
