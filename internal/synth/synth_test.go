package synth

import (
	"math/rand"
	"strings"
	"testing"

	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/regions"
	"wsnva/internal/sim"
	"wsnva/internal/varch"
)

func newMachine(side int) (*varch.Machine, *cost.Ledger) {
	g := geom.NewSquareGrid(side, float64(side))
	h := varch.MustHierarchy(g)
	l := cost.NewLedger(cost.NewUniform(), g.N())
	return varch.NewMachine(h, sim.New(), l), l
}

func TestListingResemblesFigure4(t *testing.T) {
	g := geom.NewSquareGrid(4, 4)
	h := varch.MustHierarchy(g)
	spec := LabelingProgram(Config{Hier: h, Coord: geom.Coord{}, Sense: func() *regions.Summary { return nil }})
	listing := spec.Listing()
	for _, want := range []string{
		"Condition : start = true",
		"compute mySubGraph[0] from intra-cell readings",
		"received mGraph = {senderCoord, msubGraph, mrecLevel}",
		"msgsReceived[mrecLevel]++",
		"Condition : transmit = true",
		"exfiltrate message",
		"send message to Leader(recLevel+1)",
		"msgsReceived[recLevel] = 3",
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func runMap(t *testing.T, side int, m *field.BinaryMap) (*Result, *cost.Ledger) {
	t.Helper()
	g := m.Grid
	h := varch.MustHierarchy(g)
	l := cost.NewLedger(cost.NewUniform(), g.N())
	vm := varch.NewMachine(h, sim.New(), l)
	res, err := RunOnMachine(vm, m)
	if err != nil {
		t.Fatalf("side %d: %v", side, err)
	}
	return res, l
}

func TestLabelingMatchesGroundTruthHandMaps(t *testing.T) {
	g := geom.NewSquareGrid(4, 4)
	cases := [][]string{
		{"....", "....", "....", "...."},
		{"####", "####", "####", "####"},
		{"#...", ".#..", "..#.", "...#"}, // 4 diagonal singletons
		{"##..", "##..", "..##", "..##"},
		{"####", "#..#", "#..#", "####"}, // ring
		{"#.#.", "....", ".#.#", "...."},
	}
	for i, rows := range cases {
		m := field.Parse(g, rows...)
		truth := regions.Label(m)
		res, _ := runMap(t, 4, m)
		if res.Final.Count() != truth.Count {
			t.Errorf("case %d: distributed count %d, truth %d", i, res.Final.Count(), truth.Count)
		}
		if res.Final.TotalCells() != m.Count() {
			t.Errorf("case %d: cells %d, map has %d", i, res.Final.TotalCells(), m.Count())
		}
		if !res.Final.Complete() {
			t.Errorf("case %d: final summary does not cover the grid", i)
		}
	}
}

func TestLabelingMatchesGroundTruthRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, side := range []int{2, 4, 8, 16} {
		for trial := 0; trial < 5; trial++ {
			g := geom.NewSquareGrid(side, float64(side))
			bits := make([]bool, g.N())
			for i := range bits {
				bits[i] = rng.Intn(3) == 0
			}
			m := field.FromBits(g, bits)
			truth := regions.Label(m)
			res, _ := runMap(t, side, m)
			if res.Final.Count() != truth.Count {
				t.Errorf("side %d trial %d: count %d vs truth %d", side, trial, res.Final.Count(), truth.Count)
			}
			// Region labels and sizes must agree exactly with ground truth.
			sizes := truth.Sizes()
			for _, r := range res.Final.Regions() {
				if sizes[r.Label] != r.Cells {
					t.Errorf("side %d trial %d: region %d has %d cells, truth %d",
						side, trial, r.Label, r.Cells, sizes[r.Label])
				}
			}
		}
	}
}

func TestTrivialGrid(t *testing.T) {
	g := geom.NewSquareGrid(1, 1)
	m := field.Parse(g, "#")
	res, l := runMap(t, 1, m)
	if res.Final.Count() != 1 {
		t.Errorf("count = %d", res.Final.Count())
	}
	if res.Completion != 0 {
		t.Errorf("1x1 grid should complete at t=0, got %d", res.Completion)
	}
	// Sense + compute only — no communication energy.
	if l.Units(cost.Tx) != 0 || l.Units(cost.Rx) != 0 {
		t.Error("1x1 grid should move no data")
	}
}

func TestCompletionScalesAsSqrtN(t *testing.T) {
	// Section 4.1: the algorithm runs in O(sqrt N) steps, a claim about
	// fixed-size data per step. With a bounded feature set (one 2x2 block
	// regardless of grid size) summary sizes are O(1), so completion under
	// the uniform model grows linearly in the grid side: ratio ~2 per
	// doubling, clearly below the ~4 that O(N) behavior would give.
	completion := func(side int) sim.Time {
		g := geom.NewSquareGrid(side, float64(side))
		bits := make([]bool, g.N())
		m := field.FromBits(g, bits)
		for _, c := range []geom.Coord{{Col: 0, Row: 0}, {Col: 1, Row: 0}, {Col: 0, Row: 1}, {Col: 1, Row: 1}} {
			m.Bits[g.Index(c)] = true
		}
		res, _ := runMap(t, side, m)
		return res.Completion
	}
	t4, t8, t16, t32 := completion(4), completion(8), completion(16), completion(32)
	if !(t4 < t8 && t8 < t16 && t16 < t32) {
		t.Fatalf("completion not increasing: %d %d %d %d", t4, t8, t16, t32)
	}
	for _, pair := range [][2]sim.Time{{t4, t8}, {t8, t16}, {t16, t32}} {
		ratio := float64(pair[1]) / float64(pair[0])
		if ratio > 3.0 {
			t.Errorf("completion ratio %v too steep for O(sqrt N) with bounded features", ratio)
		}
	}
	// Contrast: a solid feature field has summaries that grow with block
	// perimeter, so completion grows superlinearly in the side — the
	// data-dependent behavior EXPERIMENTS.md documents for E2.
	solid := func(side int) sim.Time {
		g := geom.NewSquareGrid(side, float64(side))
		m := field.Threshold(field.Constant{Value: 1}, g, 0.5, 0)
		res, _ := runMap(t, side, m)
		return res.Completion
	}
	s8, s32 := solid(8), solid(32)
	if float64(s32)/float64(s8) < 8 {
		t.Errorf("solid-field completion should grow superlinearly: %d -> %d", s8, s32)
	}
}

func TestRuleFiringsLinearInN(t *testing.T) {
	// Every node fires start+transmit; leaders fire a few more. Total rule
	// firings must be Theta(N), not superlinear.
	count := func(side int) int64 {
		g := geom.NewSquareGrid(side, float64(side))
		m := field.Threshold(field.Constant{Value: 1}, g, 0.5, 0)
		res, _ := runMap(t, side, m)
		return res.RuleFirings
	}
	c8, c16 := count(8), count(16)
	if ratio := float64(c16) / float64(c8); ratio < 3.5 || ratio > 4.6 {
		t.Errorf("firing ratio %v for 4x node count, want ~4", ratio)
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	g := geom.NewSquareGrid(8, 8)
	m := field.Threshold(field.RandomBlobs(3, g.Terrain, 1, 2, rand.New(rand.NewSource(41))), g, 0.5, 0)
	_, l := runMap(t, 8, m)
	// Uniform model: every unit transmitted is received exactly once
	// (XY routing, no loss), so tx and rx unit counts match.
	if l.Units(cost.Tx) != l.Units(cost.Rx) {
		t.Errorf("tx units %d != rx units %d", l.Units(cost.Tx), l.Units(cost.Rx))
	}
	if l.Units(cost.Sense) != int64(g.N()) {
		t.Errorf("sense units = %d, want one per node", l.Units(cost.Sense))
	}
	if l.Metrics().Total <= 0 {
		t.Error("no energy recorded")
	}
}

func TestRootIsHotSpot(t *testing.T) {
	// The NW-corner mapping concentrates merge work at the root: it must be
	// the maximum-energy node (the energy-balance story of E4).
	g := geom.NewSquareGrid(8, 8)
	m := field.Threshold(field.Constant{Value: 1}, g, 0.5, 0)
	_, l := runMap(t, 8, m)
	rootE := l.Energy(g.Index(geom.Coord{}))
	if rootE != l.Metrics().Max {
		t.Errorf("root energy %d, max %d — expected root to be hottest", rootE, l.Metrics().Max)
	}
}

func TestGridMismatchError(t *testing.T) {
	vm, _ := newMachine(4)
	other := geom.NewSquareGrid(4, 4)
	m := field.Threshold(field.Constant{Value: 1}, other, 0.5, 0)
	if _, err := RunOnMachine(vm, m); err == nil {
		t.Error("grid mismatch should error")
	}
}

// TestExhaustive4x4 verifies the synthesized program against ground truth
// on EVERY possible 4x4 feature map — all 65 536 of them. This is the
// strongest correctness statement the grid size allows: region counts,
// per-region cell counts, and canonical labels all match the sequential
// union-find labeler on the entire input space.
func TestExhaustive4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	g := geom.NewSquareGrid(4, 4)
	h := varch.MustHierarchy(g)
	bits := make([]bool, 16)
	for mask := 0; mask < 1<<16; mask++ {
		for i := range bits {
			bits[i] = mask>>i&1 == 1
		}
		m := field.FromBits(g, bits)
		l := cost.NewLedger(cost.NewUniform(), g.N())
		vm := varch.NewMachine(h, sim.New(), l)
		res, err := RunOnMachine(vm, m)
		if err != nil {
			t.Fatalf("mask %04x: %v", mask, err)
		}
		truth := regions.Label(m)
		if res.Final.Count() != truth.Count {
			t.Fatalf("mask %04x: count %d, truth %d", mask, res.Final.Count(), truth.Count)
		}
		sizes := truth.Sizes()
		for _, r := range res.Final.Regions() {
			if sizes[r.Label] != r.Cells {
				t.Fatalf("mask %04x: region %d has %d cells, truth %d", mask, r.Label, r.Cells, sizes[r.Label])
			}
		}
	}
}

// TestJitteredDeliveryOrderIndependence reorders deliveries with seeded
// jitter on the DES engine: the final summary and total energy must be
// identical under every jitter seed — reproducible evidence that the
// synthesized program tolerates the paper's unpredictable-latency network.
func TestJitteredDeliveryOrderIndependence(t *testing.T) {
	g0 := geom.NewSquareGrid(8, 8)
	m := field.Threshold(field.RandomBlobs(4, g0.Terrain, 1, 2, rand.New(rand.NewSource(61))), g0, 0.5, 0)
	h := varch.MustHierarchy(g0)
	var ref *Result
	var refEnergy cost.Energy
	for seed := int64(0); seed < 12; seed++ {
		l := cost.NewLedger(cost.NewUniform(), g0.N())
		vm := varch.NewMachine(h, sim.New(), l)
		if seed > 0 {
			vm.SetJitter(50, rand.New(rand.NewSource(seed)))
		}
		res, err := RunOnMachine(vm, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if seed == 0 {
			ref = res
			refEnergy = cost.Energy(l.Metrics().Total)
			continue
		}
		if !res.Final.Equal(ref.Final) {
			t.Fatalf("seed %d: jitter changed the result", seed)
		}
		if cost.Energy(l.Metrics().Total) != refEnergy {
			t.Fatalf("seed %d: jitter changed the energy", seed)
		}
		if res.Completion < ref.Completion {
			t.Errorf("seed %d: jitter cannot make completion earlier", seed)
		}
	}
}

func TestDeterministicExecution(t *testing.T) {
	g1 := geom.NewSquareGrid(8, 8)
	m1 := field.Threshold(field.RandomBlobs(4, g1.Terrain, 1, 2, rand.New(rand.NewSource(5))), g1, 0.5, 0)
	r1, l1 := runMap(t, 8, m1)
	g2 := geom.NewSquareGrid(8, 8)
	m2 := field.Threshold(field.RandomBlobs(4, g2.Terrain, 1, 2, rand.New(rand.NewSource(5))), g2, 0.5, 0)
	r2, l2 := runMap(t, 8, m2)
	if r1.Completion != r2.Completion || r1.RuleFirings != r2.RuleFirings {
		t.Error("execution not deterministic")
	}
	if l1.Metrics() != l2.Metrics() {
		t.Error("energy accounting not deterministic")
	}
	if !r1.Final.Equal(r2.Final) {
		t.Error("results not deterministic")
	}
}

// Every rule of the synthesized program must fire somewhere in a normal
// round — a never-firing rule would mean the synthesis emitted dead code.
func TestRuleCoverageComplete(t *testing.T) {
	g := geom.NewSquareGrid(8, 8)
	m := field.Threshold(field.Constant{Value: 1}, g, 0.5, 0)
	res, _ := runMap(t, 8, m)
	if len(res.RuleCoverage) != 4 {
		t.Fatalf("coverage for %d rules, want 4", len(res.RuleCoverage))
	}
	names := []string{"start", "receive", "transmit", "promote"}
	for i, n := range res.RuleCoverage {
		if n == 0 {
			t.Errorf("rule %q never fired", names[i])
		}
	}
	// Structural counts: start fires once per node; receive fires once per
	// external message (3 per leader per level it leads).
	if res.RuleCoverage[0] != int64(g.N()) {
		t.Errorf("start fired %d times, want %d", res.RuleCoverage[0], g.N())
	}
}
