package synth

import (
	"math"
	"testing"

	"wsnva/internal/cost"
	"wsnva/internal/geom"
	"wsnva/internal/sim"
	"wsnva/internal/varch"
)

// gaussStrength builds a detection model around a target at (tc, tr) in
// cell units with the given radius.
func gaussStrength(g *geom.Grid, tc, tr, radius float64) func(geom.Coord) float64 {
	return func(c geom.Coord) float64 {
		dx := float64(c.Col) - tc
		dy := float64(c.Row) - tr
		d2 := dx*dx + dy*dy
		s := math.Exp(-d2 / (2 * radius * radius))
		if s < 0.05 {
			return 0
		}
		return s
	}
}

func runTrack(t *testing.T, side int, strength func(geom.Coord) float64) (*TrackEstimate, *cost.Ledger) {
	t.Helper()
	g := geom.NewSquareGrid(side, float64(side))
	h := varch.MustHierarchy(g)
	l := cost.NewLedger(cost.NewUniform(), g.N())
	vm := varch.NewMachine(h, sim.New(), l)
	est, err := RunTrackingEpoch(vm, strength)
	if err != nil {
		t.Fatal(err)
	}
	return est, l
}

func TestTrackingEstimatesPosition(t *testing.T) {
	g := geom.NewSquareGrid(16, 16)
	_ = g
	for _, target := range []struct{ col, row float64 }{
		{8, 8}, {3.5, 11.2}, {14, 2}, {0, 0},
	} {
		est, _ := runTrack(t, 16, gaussStrength(geom.NewSquareGrid(16, 16), target.col, target.row, 1.5))
		if !est.Valid {
			t.Fatalf("target at (%v,%v) undetected", target.col, target.row)
		}
		if math.Abs(est.Col-target.col) > 1.0 || math.Abs(est.Row-target.row) > 1.0 {
			t.Errorf("target (%v,%v): estimate (%.2f,%.2f) off by more than a cell",
				target.col, target.row, est.Col, est.Row)
		}
	}
}

func TestTrackingNoTargetSilent(t *testing.T) {
	est, l := runTrack(t, 16, func(geom.Coord) float64 { return 0 })
	if est.Valid || est.Detectors != 0 {
		t.Error("no target, no estimate")
	}
	if l.Units(cost.Tx) != 0 || l.Units(cost.Compute) != 0 {
		t.Error("idle tracking network moved data")
	}
	if l.Units(cost.Sense) != 256 {
		t.Errorf("sense units = %d, want one per node", l.Units(cost.Sense))
	}
}

func TestTrackingEnergyScalesWithFootprint(t *testing.T) {
	g := geom.NewSquareGrid(16, 16)
	_, lSmall := runTrack(t, 16, gaussStrength(g, 8, 8, 1))
	_, lBig := runTrack(t, 16, gaussStrength(g, 8, 8, 4))
	if lBig.Metrics().Total <= lSmall.Metrics().Total {
		t.Errorf("larger detection footprint (%d) should cost more than small (%d)",
			lBig.Metrics().Total, lSmall.Metrics().Total)
	}
}

func TestTrackingFollowsMovingTarget(t *testing.T) {
	// The estimate must track a target crossing the field: per epoch the
	// estimate error stays under a cell and the estimate moves monotonically
	// along the path's axis.
	g := geom.NewSquareGrid(16, 16)
	h := varch.MustHierarchy(g)
	prevCol := -1.0
	for epoch := 0; epoch <= 6; epoch++ {
		tc := 2 + float64(epoch)*2 // moves east from col 2 to col 14
		tr := 7.5
		vm := varch.NewMachine(h, sim.New(), cost.NewLedger(cost.NewUniform(), g.N()))
		est, err := RunTrackingEpoch(vm, gaussStrength(g, tc, tr, 1.5))
		if err != nil {
			t.Fatal(err)
		}
		if !est.Valid {
			t.Fatalf("epoch %d: lost the target", epoch)
		}
		if math.Abs(est.Col-tc) > 1 || math.Abs(est.Row-tr) > 1 {
			t.Errorf("epoch %d: estimate (%.2f,%.2f) vs truth (%.1f,%.1f)", epoch, est.Col, est.Row, tc, tr)
		}
		if est.Col <= prevCol {
			t.Errorf("epoch %d: estimate column %v did not advance past %v", epoch, est.Col, prevCol)
		}
		prevCol = est.Col
	}
}

func TestTrackingWeightIsTotalMass(t *testing.T) {
	g := geom.NewSquareGrid(8, 8)
	strength := gaussStrength(g, 4, 4, 2)
	est, _ := runTrack(t, 8, strength)
	var want float64
	for _, c := range g.Coords() {
		want += float64(int64(strength(c) * 1000))
	}
	want /= 1000
	if math.Abs(est.Weight-want) > 0.01 {
		t.Errorf("weight %v, want %v", est.Weight, want)
	}
}
