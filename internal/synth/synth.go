// Package synth is the program-synthesis stage of the methodology
// (Section 4.3): it converts the mapped quad-tree algorithm into the
// reactive guarded-command program of paper Figure 4, one instance per
// virtual node, and provides the driver that executes a synthesized
// program set on the virtual architecture.
//
// The generated rule set follows Figure 4 clause for clause, with the
// indexing made self-consistent (the paper's figure increments recLevel in
// two places whose interleaving it leaves ambiguous): here a node's
// recLevel names the highest level of mySubGraph it has completed, a
// message carries the level its contents must be merged at
// (mrecLevel = sender's recLevel + 1), and leaders contribute their own
// quadrant by a local merge rather than a self-message, so every leader
// waits for exactly the 3 external messages the paper predicts.
package synth

import (
	"fmt"

	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/program"
	"wsnva/internal/regions"
	"wsnva/internal/sim"
	"wsnva/internal/trace"
	"wsnva/internal/varch"
)

// GraphMsg is the message alphabet of Figure 4: the sender's coordinates,
// its boundary sub-graph, and the recursion level the data merges at.
type GraphMsg struct {
	Sender geom.Coord
	Sub    *regions.Summary
	Level  int
}

// Config parameterizes the synthesized program for one node.
type Config struct {
	Hier  *varch.Hierarchy
	Coord geom.Coord
	// Sense produces the node's level-0 boundary summary from the sensing
	// interface ("compute mySubGraph from intra-cell readings").
	Sense func() *regions.Summary
}

// State variable names used by the synthesized program. Exported so tests
// and tools can inspect node state symbolically.
const (
	VarStart    = "start"
	VarTransmit = "transmit"
	VarDone     = "done"
	VarRecLevel = "recLevel"
	VarMaxLevel = "maxrecLevel"
	VarSubGraph = "mySubGraph"
	VarMsgsRecv = "msgsReceived"
)

// LabelingProgram synthesizes the homogeneous-region labeling program for
// the node at cfg.Coord. The returned Spec is self-contained: it reads and
// writes only its Env and the Effector.
func LabelingProgram(cfg Config) *program.Spec {
	h := cfg.Hier
	me := cfg.Coord
	maxLevel := h.Levels
	spec := &program.Spec{
		Title: fmt.Sprintf("label-regions@%v", me),
		Init: func(e *program.Env) {
			e.Bools[VarStart] = true
			e.Bools[VarTransmit] = false
			e.Bools[VarDone] = false
			e.Ints[VarRecLevel] = 0
			e.Ints[VarMaxLevel] = int64(maxLevel)
			e.Objs[VarSubGraph] = make([]*regions.Summary, maxLevel+1)
			e.Objs[VarMsgsRecv] = make([]int64, maxLevel+1)
		},
	}

	subGraph := func(e *program.Env) []*regions.Summary {
		return e.Objs[VarSubGraph].([]*regions.Summary)
	}
	msgsRecv := func(e *program.Env) []int64 {
		return e.Objs[VarMsgsRecv].([]int64)
	}
	mergeAt := func(e *program.Env, level int, sub *regions.Summary) {
		sg := subGraph(e)
		if sg[level] == nil {
			sg[level] = sub
		} else {
			sg[level].Merge(sub)
		}
	}

	spec.Rules = []program.Rule{
		{
			Name:      "start",
			Condition: "start = true",
			Effect: "start = false\ncompute mySubGraph[0] from intra-cell readings\n" +
				"transmit = true",
			Guard: func(e *program.Env) bool { return e.Bools[VarStart] },
			Action: func(e *program.Env, fx program.Effector) {
				e.Bools[VarStart] = false
				fx.Sense(1)
				sub := cfg.Sense()
				fx.Compute(1)
				mergeAt(e, 0, sub)
				e.Bools[VarTransmit] = true
			},
		},
		{
			Name:      "receive",
			Condition: "received mGraph = {senderCoord, msubGraph, mrecLevel}",
			Effect:    "merge(msubGraph, mySubGraph[mrecLevel])\nmsgsReceived[mrecLevel]++",
			Guard:     func(e *program.Env) bool { return e.PeekMsg() != nil },
			Action: func(e *program.Env, fx program.Effector) {
				msg := e.TakeMsg().(GraphMsg)
				fx.Compute(msg.Sub.Size())
				mergeAt(e, msg.Level, msg.Sub)
				msgsRecv(e)[msg.Level]++
			},
		},
		{
			Name:      "transmit",
			Condition: "transmit = true",
			Effect: "message = {myCoords, mySubGraph[recLevel], recLevel+1}\n" +
				"if (recLevel = maxrecLevel)\n  exfiltrate message\n" +
				"else if (myCoords = Leader(recLevel+1))\n" +
				"  merge(mySubGraph[recLevel], mySubGraph[recLevel+1]); recLevel++\n" +
				"else\n  send message to Leader(recLevel+1); halt\ntransmit = false",
			Guard: func(e *program.Env) bool { return e.Bools[VarTransmit] },
			Action: func(e *program.Env, fx program.Effector) {
				e.Bools[VarTransmit] = false
				level := int(e.Ints[VarRecLevel])
				sg := subGraph(e)
				switch {
				case level == maxLevel:
					e.Bools[VarDone] = true
					fx.Exfiltrate(sg[level])
				case h.LeaderAt(me, level+1) == me:
					// The self-message of Figure 2's mapping: the parent is
					// co-located with its NW child, so the contribution is a
					// local merge, not a transmission.
					sub := sg[level]
					sg[level] = nil
					mergeAt(e, level+1, sub)
					e.Ints[VarRecLevel] = int64(level + 1)
				default:
					sub := sg[level]
					sg[level] = nil
					fx.Send(level+1, sub.Size(), GraphMsg{Sender: me, Sub: sub, Level: level + 1})
					e.Bools[VarDone] = true
				}
			},
		},
		{
			Name:      "promote",
			Condition: "msgsReceived[recLevel] = 3 and not done",
			Effect:    "transmit = true",
			Guard: func(e *program.Env) bool {
				if e.Bools[VarDone] || e.Bools[VarTransmit] {
					return false
				}
				level := int(e.Ints[VarRecLevel])
				if level == 0 || level > maxLevel {
					return false
				}
				return msgsRecv(e)[level] == 3
			},
			Action: func(e *program.Env, fx program.Effector) {
				// Consume the count so the guard cannot refire at this level.
				msgsRecv(e)[int(e.Ints[VarRecLevel])] = -1
				e.Bools[VarTransmit] = true
			},
		},
	}
	return spec
}

// SenseFromMap returns a Sense function reading the node's cell from a
// binary feature map — the simulated sensing interface.
func SenseFromMap(m *field.BinaryMap, c geom.Coord) func() *regions.Summary {
	return func() *regions.Summary { return regions.Leaf(m, c) }
}

// Result is the outcome of one execution round of the synthesized
// application on the virtual architecture.
type Result struct {
	Final       *regions.Summary // the exfiltrated root summary
	Completion  sim.Time         // kernel time when exfiltration happened
	RuleFirings int64            // total guarded-command firings
	// RuleCoverage sums per-rule firings across all nodes, indexed like the
	// synthesized Spec's rule list (start, receive, transmit, promote).
	RuleCoverage []int64
	ExfilCoord   geom.Coord // node that exfiltrated (must be the root)
}

// machineFx adapts varch.Machine to program.Effector for one node.
type machineFx struct {
	vm    *varch.Machine
	coord geom.Coord
	out   *Result
}

func (f *machineFx) Send(level int, size int64, payload any) {
	f.vm.SendToLeader(f.coord, level, size, payload)
}

func (f *machineFx) Exfiltrate(result any) {
	f.out.Final = result.(*regions.Summary)
	f.out.Completion = f.vm.Kernel().Now()
	f.out.ExfilCoord = f.coord
	emitExfiltrate(f.vm, f.coord)
}

func (f *machineFx) Compute(units int64) { f.vm.Compute(f.coord, units) }
func (f *machineFx) Sense(units int64)   { f.vm.Sense(f.coord, units) }

// emitExfiltrate records the out-of-network delivery when tracing is on.
func emitExfiltrate(vm *varch.Machine, c geom.Coord) {
	tr := vm.Tracer()
	if tr == nil {
		return
	}
	tr.EmitEvent(trace.Event{At: vm.Kernel().Now(), Kind: trace.Exfiltrate,
		Node: c.String(), ID: vm.Grid().Index(c), Col: c.Col, Row: c.Row,
		PeerCol: -1, PeerRow: -1, Detail: "final summary"})
}

// phase emits a driver phase-boundary marker when tracing is on.
func phase(vm *varch.Machine, detail string) {
	tr := vm.Tracer()
	if tr == nil {
		return
	}
	tr.EmitEvent(trace.Event{At: vm.Kernel().Now(), Kind: trace.Phase,
		ID: -1, Col: -1, Row: -1, PeerCol: -1, PeerRow: -1, Detail: detail})
}

// wireTraceHooks makes inst's rule firings visible in the machine's trace.
func wireTraceHooks(vm *varch.Machine, inst *program.Instance, c geom.Coord) {
	tr := vm.Tracer()
	if tr == nil {
		return
	}
	idx := vm.Grid().Index(c)
	inst.SetFireHook(func(rule string) {
		tr.EmitEvent(trace.Event{At: vm.Kernel().Now(), Kind: trace.RuleFire,
			Node: c.String(), ID: idx, Col: c.Col, Row: c.Row,
			PeerCol: -1, PeerRow: -1, Detail: rule})
	})
}

// maxQuiescenceSteps bounds rule firings per activation; a correct program
// fires O(levels) rules per event.
const maxQuiescenceSteps = 1 << 16

// Transport optionally transforms every GraphMsg between transmission and
// delivery — the hook integration tests use to force each message through
// the binary wire codec, proving the serialized form carries the protocol.
type Transport func(GraphMsg) (GraphMsg, error)

// RunOnMachine synthesizes the labeling program for every node of vm's
// grid, wires the instances to the machine, executes one full round from
// time 0, and returns the result. It is experiment E2's engine and the
// reference implementation the goroutine runtime is checked against.
func RunOnMachine(vm *varch.Machine, m *field.BinaryMap) (*Result, error) {
	return RunOnMachineWithTransport(vm, m, nil)
}

// RunOnMachineWithTransport is RunOnMachine with every delivered message
// passed through transport first (nil means identity).
func RunOnMachineWithTransport(vm *varch.Machine, m *field.BinaryMap, transport Transport) (*Result, error) {
	h := vm.Hier
	if m.Grid != vm.Grid() {
		return nil, fmt.Errorf("synth: map grid and machine grid differ")
	}
	res := &Result{}
	var transportErr error
	insts := make([]*program.Instance, h.Grid.N())
	for _, c := range h.Grid.Coords() {
		c := c
		fx := &machineFx{vm: vm, coord: c, out: res}
		spec := LabelingProgram(Config{Hier: h, Coord: c, Sense: SenseFromMap(m, c)})
		inst := program.NewInstance(spec, fx)
		wireTraceHooks(vm, inst, c)
		insts[h.Grid.Index(c)] = inst
		vm.Handle(c, func(msg varch.Message) {
			payload := msg.Payload
			if transport != nil {
				gm, err := transport(payload.(GraphMsg))
				if err != nil {
					if transportErr == nil {
						transportErr = err
					}
					return
				}
				payload = gm
			}
			inst.OnMessage(payload, maxQuiescenceSteps)
		})
	}
	// Start every node at t=0; rule firings schedule the message traffic.
	phase(vm, "labeling:start")
	for _, inst := range insts {
		inst.RunToQuiescence(maxQuiescenceSteps)
	}
	vm.Kernel().Run()
	phase(vm, "labeling:end")
	for _, inst := range insts {
		res.RuleFirings += inst.Fired()
		for i, n := range inst.FiredByRule() {
			for len(res.RuleCoverage) <= i {
				res.RuleCoverage = append(res.RuleCoverage, 0)
			}
			res.RuleCoverage[i] += n
		}
		// The result only holds summaries (which survive a Release), never
		// the instance or its Env, so the interpreter state is recyclable.
		inst.Release()
	}
	if transportErr != nil {
		return nil, transportErr
	}
	if res.Final == nil {
		return nil, fmt.Errorf("synth: round did not complete (no exfiltration)")
	}
	if res.ExfilCoord != h.Root() {
		return nil, fmt.Errorf("synth: exfiltration at %v, want root %v", res.ExfilCoord, h.Root())
	}
	return res, nil
}
