package synth

import (
	"fmt"

	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/program"
	"wsnva/internal/regions"
	"wsnva/internal/sim"
	"wsnva/internal/varch"
)

// The second synthesized application: event-driven alarm aggregation
// (wildfire detection, one of the motivating applications in the paper's
// introduction). Section 4.1 notes the periodic task-graph model "might
// not be suitable for event-driven applications ... where only the sensor
// nodes in the vicinity of the target perform the sampling"; this program
// is that other regime on the same virtual architecture: silent nodes cost
// nothing, and every alarm travels up the group hierarchy as a delta that
// each level's leader folds into its local picture before forwarding.
// The root raises the alarm when the count crosses a quorum.

// AlarmMsg is the alarm delta: how many newly alarmed cells it reports,
// their bounding box, and the level it merges at next.
type AlarmMsg struct {
	Count int
	Box   regions.BBox
	Level int
}

// alarmMsgSize is the cost-model size of one alarm delta: count + box.
const alarmMsgSize = 3

// AlarmConfig parameterizes the synthesized alarm program for one node.
type AlarmConfig struct {
	Hier  *varch.Hierarchy
	Coord geom.Coord
	// Hot reports whether this node's reading crosses the alarm threshold.
	Hot func() bool
	// Quorum is the number of alarmed cells at which the root raises the
	// network-wide alarm.
	Quorum int
}

// EvacMsg is the evacuation order the root disseminates once the quorum
// fires; every node's program acknowledges it by entering the evacuating
// state.
type EvacMsg struct{}

// Alarm program state variable names.
const (
	VarAlarmTotal  = "alarmTotal"  // per-level alarm counts (the root's top slot is global)
	VarAlarmBox    = "alarmBox"    // bounding boxes per level
	VarAlarmRaised = "alarmRaised" // root-only: quorum reached
	VarEvacuating  = "evacuating"  // evacuation order received
	VarOutbox      = "outbox"      // deltas awaiting transmission
)

// outItem is a queued delta with its next merge level.
type outItem struct {
	msg AlarmMsg
}

// AlarmProgram synthesizes the event-driven alarm program for one node.
func AlarmProgram(cfg AlarmConfig) *program.Spec {
	h := cfg.Hier
	me := cfg.Coord
	maxLevel := h.Levels
	if cfg.Quorum < 1 {
		panic(fmt.Sprintf("synth: quorum %d must be positive", cfg.Quorum))
	}
	spec := &program.Spec{
		Title: fmt.Sprintf("alarm@%v", me),
		Init: func(e *program.Env) {
			e.Bools[VarStart] = true
			e.Bools[VarAlarmRaised] = false
			e.Bools[VarEvacuating] = false
			e.Objs[VarAlarmTotal] = make([]int64, maxLevel+1)
			e.Objs[VarAlarmBox] = make([]regions.BBox, maxLevel+1)
			e.Objs[VarOutbox] = []outItem(nil)
		},
	}
	totals := func(e *program.Env) []int64 { return e.Objs[VarAlarmTotal].([]int64) }
	boxes := func(e *program.Env) []regions.BBox { return e.Objs[VarAlarmBox].([]regions.BBox) }

	// mergeDelta folds a delta into the node's level record and queues the
	// upward forward (or raises the alarm at the root).
	mergeDelta := func(e *program.Env, msg AlarmMsg) {
		t := totals(e)
		b := boxes(e)
		if t[msg.Level] == 0 {
			b[msg.Level] = msg.Box
		} else {
			b[msg.Level] = b[msg.Level].Union(msg.Box)
		}
		t[msg.Level] += int64(msg.Count)
		if msg.Level < maxLevel {
			up := AlarmMsg{Count: msg.Count, Box: msg.Box, Level: msg.Level + 1}
			e.Objs[VarOutbox] = append(e.Objs[VarOutbox].([]outItem), outItem{msg: up})
		}
	}

	spec.Rules = []program.Rule{
		{
			Name:      "start",
			Condition: "start = true",
			Effect:    "start = false\nsense\nif hot: emit delta {1, myCell} toward Leader(1)",
			Guard:     func(e *program.Env) bool { return e.Bools[VarStart] },
			Action: func(e *program.Env, fx program.Effector) {
				e.Bools[VarStart] = false
				fx.Sense(1)
				if !cfg.Hot() {
					return
				}
				fx.Compute(1)
				box := regions.BBox{MinCol: me.Col, MinRow: me.Row, MaxCol: me.Col, MaxRow: me.Row}
				mergeDelta(e, AlarmMsg{Count: 1, Box: box, Level: 0})
			},
		},
		{
			Name:      "receive",
			Condition: "received mAlarm = {count, box, mrecLevel}",
			Effect:    "alarmTotal[mrecLevel] += count; alarmBox[mrecLevel] ∪= box\nqueue delta for Leader(mrecLevel+1)",
			Guard: func(e *program.Env) bool {
				_, ok := e.PeekMsg().(AlarmMsg)
				return ok
			},
			Action: func(e *program.Env, fx program.Effector) {
				msg := e.TakeMsg().(AlarmMsg)
				fx.Compute(alarmMsgSize)
				mergeDelta(e, msg)
			},
		},
		{
			Name:      "evacuate",
			Condition: "received mEvacuate",
			Effect:    "evacuating = true",
			Guard: func(e *program.Env) bool {
				_, ok := e.PeekMsg().(EvacMsg)
				return ok
			},
			Action: func(e *program.Env, fx program.Effector) {
				e.TakeMsg()
				e.Bools[VarEvacuating] = true
			},
		},
		{
			Name:      "forward",
			Condition: "outbox not empty",
			Effect: "pop delta; if myCoords = Leader(level) merge locally\n" +
				"else send delta to Leader(level)",
			Guard: func(e *program.Env) bool { return len(e.Objs[VarOutbox].([]outItem)) > 0 },
			Action: func(e *program.Env, fx program.Effector) {
				box := e.Objs[VarOutbox].([]outItem)
				item := box[0]
				e.Objs[VarOutbox] = box[1:]
				if h.LeaderAt(me, item.msg.Level) == me {
					// This node leads the next level too: fold locally.
					mergeDelta(e, item.msg)
					return
				}
				fx.Send(item.msg.Level, alarmMsgSize, item.msg)
			},
		},
		{
			Name:      "quorum",
			Condition: "alarmTotal[maxrecLevel] >= quorum and not alarmRaised",
			Effect:    "alarmRaised = true\nexfiltrate {total, box}",
			Guard: func(e *program.Env) bool {
				if e.Bools[VarAlarmRaised] {
					return false
				}
				return totals(e)[maxLevel] >= int64(cfg.Quorum)
			},
			Action: func(e *program.Env, fx program.Effector) {
				e.Bools[VarAlarmRaised] = true
				fx.Exfiltrate(AlarmMsg{
					Count: int(totals(e)[maxLevel]),
					Box:   boxes(e)[maxLevel],
					Level: maxLevel,
				})
			},
		},
	}
	return spec
}

// AlarmResult is the outcome of one alarm round.
type AlarmResult struct {
	Raised      bool
	AtCount     int          // alarm count when the quorum fired
	FinalCount  int          // total alarmed cells seen by the root at quiescence
	Box         regions.BBox // bounding box of alarms at quorum time
	RaisedAt    sim.Time
	RuleFirings int64

	insts []*program.Instance
}

// EvacuatingCount returns how many nodes have received the evacuation
// order. The instances stay wired to the machine after the round, so a
// caller can GroupBroadcast an EvacMsg, drain the kernel, and count here.
func (r *AlarmResult) EvacuatingCount() int {
	n := 0
	for _, inst := range r.insts {
		if inst.Env.Bools[VarEvacuating] {
			n++
		}
	}
	return n
}

// RunAlarmOnMachine executes one alarm round: every node samples hot once
// at t=0, alarm deltas race up the hierarchy, and the root raises the
// alarm if the quorum is met. The hot map marks alarmed cells.
func RunAlarmOnMachine(vm *varch.Machine, hot *field.BinaryMap, quorum int) (*AlarmResult, error) {
	h := vm.Hier
	if hot.Grid != vm.Grid() {
		return nil, fmt.Errorf("synth: hot map grid and machine grid differ")
	}
	res := &AlarmResult{}
	insts := make([]*program.Instance, h.Grid.N())
	rootIdx := h.Grid.Index(h.Root())
	for _, c := range h.Grid.Coords() {
		c := c
		fx := &alarmFx{vm: vm, coord: c, out: res}
		spec := AlarmProgram(AlarmConfig{
			Hier:   h,
			Coord:  c,
			Hot:    func() bool { return hot.At(c) },
			Quorum: quorum,
		})
		inst := program.NewInstance(spec, fx)
		insts[h.Grid.Index(c)] = inst
		vm.Handle(c, func(msg varch.Message) {
			inst.OnMessage(msg.Payload, maxQuiescenceSteps)
		})
	}
	for _, inst := range insts {
		inst.RunToQuiescence(maxQuiescenceSteps)
	}
	vm.Kernel().Run()
	for _, inst := range insts {
		res.RuleFirings += inst.Fired()
	}
	rootTotals := insts[rootIdx].Env.Objs[VarAlarmTotal].([]int64)
	res.FinalCount = int(rootTotals[h.Levels])
	res.insts = insts
	return res, nil
}

// alarmFx adapts the machine to the alarm program.
type alarmFx struct {
	vm    *varch.Machine
	coord geom.Coord
	out   *AlarmResult
}

func (f *alarmFx) Send(level int, size int64, payload any) {
	f.vm.SendToLeader(f.coord, level, size, payload)
}

func (f *alarmFx) Exfiltrate(result any) {
	msg := result.(AlarmMsg)
	f.out.Raised = true
	f.out.AtCount = msg.Count
	f.out.Box = msg.Box
	f.out.RaisedAt = f.vm.Kernel().Now()
}

func (f *alarmFx) Compute(units int64) { f.vm.Compute(f.coord, units) }
func (f *alarmFx) Sense(units int64)   { f.vm.Sense(f.coord, units) }
