package synth

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wsnva/internal/field"
	"wsnva/internal/trace"
	"wsnva/internal/trace/check"
)

// goldenTrace runs one labeling round on a side×side grid with a machine-
// level tracer attached and returns the JSONL encoding of every event. The
// blob seed matches the experiments package's standard workload so the
// golden files double as documentation of what a real E-series run emits.
func goldenTrace(t *testing.T, side int) ([]byte, []trace.Event) {
	t.Helper()
	vm, _ := newMachine(side)
	g := vm.Hier.Grid
	m := field.Threshold(field.RandomBlobs(4, g.Terrain, float64(side)/8, float64(side)/5,
		rand.New(rand.NewSource(101))), g, 0.5, 0)
	tr := trace.New(1 << 16)
	vm.SetTracer(tr)
	if _, err := RunOnMachine(vm, m); err != nil {
		t.Fatalf("labeling round failed: %v", err)
	}
	if tr.Lost() != 0 {
		t.Fatalf("golden tracer overflowed: lost %d events", tr.Lost())
	}
	events := tr.Events()
	var buf bytes.Buffer
	if err := trace.Encode(&buf, events); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes(), events
}

// TestGoldenTraces pins the exact event stream of the 4×4 and 8×8 labeling
// rounds byte for byte: the merge schedule, the quorum arrivals, and the
// exfiltration are all load-bearing ordering contracts. Regenerate with
// UPDATE_GOLDEN=1 after an intentional protocol change and review the diff
// like any other behavioral change.
func TestGoldenTraces(t *testing.T) {
	for _, side := range []int{4, 8} {
		got, events := goldenTrace(t, side)
		path := filepath.Join("testdata", goldenName(side))
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d events)", path, len(events))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file %s (run with UPDATE_GOLDEN=1 to create): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("side %d: trace diverged from %s (%d bytes vs %d); regenerate with UPDATE_GOLDEN=1 if the protocol change is intentional",
				side, path, len(got), len(want))
		}

		// The golden stream must also round-trip through the JSONL decoder
		// and satisfy every invariant the checker knows.
		decoded, err := trace.Decode(bytes.NewReader(got))
		if err != nil {
			t.Fatalf("side %d: decode: %v", side, err)
		}
		if len(decoded) != len(events) {
			t.Fatalf("side %d: round-trip lost events: %d != %d", side, len(decoded), len(events))
		}
		if vs := check.Run(decoded, check.Options{Side: side}); len(vs) != 0 {
			t.Errorf("side %d: golden trace violates invariants: %v", side, vs[0])
		}
	}
}

func goldenName(side int) string {
	if side == 4 {
		return "label_4x4.trace.golden.jsonl"
	}
	return "label_8x8.trace.golden.jsonl"
}

// TestGoldenTraceDeterminism re-runs the 4×4 round and demands the encoding
// be byte-identical across runs within one process — the property that
// makes golden files stable at all.
func TestGoldenTraceDeterminism(t *testing.T) {
	a, _ := goldenTrace(t, 4)
	b, _ := goldenTrace(t, 4)
	if !bytes.Equal(a, b) {
		t.Error("two identical runs encoded different traces")
	}
}
