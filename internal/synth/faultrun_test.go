package synth

import (
	"math/rand"
	"testing"

	"wsnva/internal/cost"
	"wsnva/internal/fault"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/sim"
	"wsnva/internal/varch"
)

func blobMap(side int, seed int64) *field.BinaryMap {
	g := geom.NewSquareGrid(side, float64(side))
	f := field.RandomBlobs(3, g.Terrain, float64(side)/8, float64(side)/4, rand.New(rand.NewSource(seed)))
	return field.Threshold(f, g, 0.5, 0)
}

// faultMachine builds a machine over the map's own grid (RunWithFaults
// compares grids by identity).
func faultMachine(m *field.BinaryMap) *varch.Machine {
	h := varch.MustHierarchy(m.Grid)
	l := cost.NewLedger(cost.NewUniform(), m.Grid.N())
	return varch.NewMachine(h, sim.New(), l)
}

func TestRunWithFaultsNoFaultsMatchesPlainRun(t *testing.T) {
	// With an empty schedule, no loss, and generous deadlines, the fault
	// driver must reproduce the plain driver's result exactly: same summary,
	// same completion time, no forced promotions, no failovers.
	m := blobMap(8, 17)
	plain, err := RunOnMachine(faultMachine(m), m)
	if err != nil {
		t.Fatal(err)
	}
	vm := faultMachine(m)
	res, err := RunWithFaults(vm, m, FaultConfig{LevelDeadline: DefaultLevelDeadline(vm)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || !res.Final.Equal(plain.Final) {
		t.Fatalf("fault driver summary differs from plain driver")
	}
	if res.Completion != plain.Completion {
		t.Errorf("completion %d, plain %d", res.Completion, plain.Completion)
	}
	if res.ForcedPromotions != 0 || res.LeaderFailovers != 0 {
		t.Errorf("healthy round forced %d promotions, %d failovers; want 0",
			res.ForcedPromotions, res.LeaderFailovers)
	}
	if res.Coverage != 1 {
		t.Errorf("coverage = %v, want 1", res.Coverage)
	}
	if res.ExfilCoord != vm.Hier.Root() {
		t.Errorf("exfiltration at %v, want root", res.ExfilCoord)
	}
}

func TestRunWithFaultsSurvivesRootCrash(t *testing.T) {
	// Kill the root (the level-max leader at (0,0)) right after the start
	// rules fire: followers must fail over and an acting root must
	// exfiltrate a partial summary.
	m := blobMap(8, 23)
	run := func(rel fault.Reliability) *FaultResult {
		vm := faultMachine(m)
		sched := fault.At(fault.Crash{Node: vm.Grid().Index(vm.Hier.Root()), At: 1})
		res, err := RunWithFaults(vm, m, FaultConfig{
			Schedule:      sched,
			Reliability:   rel,
			LevelDeadline: DefaultLevelDeadline(vm),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final == nil {
			t.Fatal("round stalled: no exfiltration despite failover + deadlines")
		}
		if res.ExfilCoord == vm.Hier.Root() {
			t.Error("dead root exfiltrated")
		}
		if res.LeaderFailovers == 0 {
			t.Error("no leader failover recorded for a dead root")
		}
		return res
	}

	n := float64(blobMap(8, 23).Grid.N())
	// Without ARQ, the root's 3 level-1 siblings had quorum messages in
	// flight to it at crash time; those die with the root, so exactly the
	// NW 2x2 block's 4 cells are lost.
	if res := run(fault.Reliability{}); res.Coverage != (n-4)/n {
		t.Errorf("plain coverage = %v, want exactly %v (root block lost in flight)",
			res.Coverage, (n-4)/n)
	}
	// With ARQ, the ack timeout re-resolves the acting leader on retry, so
	// the in-flight siblings' data is recovered; only the root's own cell
	// dies with it.
	if res := run(fault.DefaultReliability()); res.Coverage != (n-1)/n {
		t.Errorf("reliable coverage = %v, want exactly %v (only the root's cell lost)",
			res.Coverage, (n-1)/n)
	}
}

func TestRunWithFaultsRegionKill(t *testing.T) {
	// A correlated kill zone (the whole NE 2x2 block at t=1, before any of
	// it is aggregated) must cost exactly that block's cells and nothing
	// else.
	m := blobMap(8, 29)
	vm := faultMachine(m)
	g := vm.Grid()
	sched := fault.Region(g, geom.Coord{Col: 6, Row: 0}, geom.Coord{Col: 7, Row: 1}, 1)
	res, err := RunWithFaults(vm, m, FaultConfig{
		Schedule:      sched,
		LevelDeadline: DefaultLevelDeadline(vm),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil {
		t.Fatal("round stalled")
	}
	want := float64(g.N()-4) / float64(g.N())
	if res.Coverage != want {
		t.Errorf("coverage = %v, want exactly %v (4 dead cells)", res.Coverage, want)
	}
	if res.Crashed != 4 {
		t.Errorf("Crashed = %d, want 4", res.Crashed)
	}
}

func TestRunWithFaultsDeterministic(t *testing.T) {
	run := func() *FaultResult {
		m := blobMap(8, 31)
		vm := faultMachine(m)
		res, err := RunWithFaults(vm, m, FaultConfig{
			Schedule:      fault.MustRandom(vm.Grid().N(), 0.15, 50, 99),
			Loss:          0.1,
			LossSeed:      7,
			Reliability:   fault.DefaultReliability(),
			LevelDeadline: DefaultLevelDeadline(vm),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completion != b.Completion || a.Coverage != b.Coverage ||
		a.RuleFirings != b.RuleFirings || a.ForcedPromotions != b.ForcedPromotions ||
		a.Stats != b.Stats {
		t.Errorf("two identical fault runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Final == nil || b.Final == nil || !a.Final.Equal(b.Final) {
		t.Error("summaries diverged between identical runs")
	}
}

func TestRunWithFaultsCoverageMonotoneInCrashFraction(t *testing.T) {
	// Nested crash sets (fault.Random's permutation-prefix construction)
	// make the dead set grow with the fraction, so exfiltrated coverage can
	// only fall as the fraction rises.
	const seed = 4242
	prev := 2.0
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		m := blobMap(8, 11)
		vm := faultMachine(m)
		res, err := RunWithFaults(vm, m, FaultConfig{
			Schedule:      fault.MustRandom(vm.Grid().N(), frac, 40, seed),
			LevelDeadline: DefaultLevelDeadline(vm),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final == nil {
			t.Fatalf("frac %v: stalled", frac)
		}
		if res.Coverage > prev {
			t.Errorf("coverage rose from %v to %v at frac %v", prev, res.Coverage, frac)
		}
		prev = res.Coverage
	}
	if prev > 0.9 {
		t.Errorf("30%% crash fraction left coverage at %v; sweep isn't exercising faults", prev)
	}
}

func TestWatchdogDisabledStallsUnderCrash(t *testing.T) {
	// Without deadlines there is no failover trigger: a dead root leader
	// stalls the round, and the driver reports it as Final == nil instead
	// of erroring — stalling is a measured outcome, not a bug.
	m := blobMap(4, 5)
	vm := faultMachine(m)
	g := vm.Grid()
	res, err := RunWithFaults(vm, m, FaultConfig{
		Schedule: fault.At(fault.Crash{Node: g.Index(vm.Hier.Root()), At: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != nil {
		t.Error("round completed despite dead root and no watchdogs")
	}
}

func TestNoEventFiresAtDeadNode(t *testing.T) {
	// Property: whatever the crash schedule, once a node is dead no handler
	// runs at it. Checked by wrapping every handler with a liveness assert
	// over a spread of seeds and fractions.
	for _, seedFrac := range []struct {
		seed int64
		frac float64
	}{{1, 0.1}, {2, 0.25}, {3, 0.5}, {4, 0.75}} {
		m := blobMap(8, seedFrac.seed)
		vm := faultMachine(m)
		g := vm.Grid()
		sched := fault.MustRandom(g.N(), seedFrac.frac, 60, seedFrac.seed)
		deadAt := make(map[int]sim.Time, len(sched))
		for _, c := range sched {
			deadAt[c.Node] = c.At
		}
		res, err := RunWithFaults(vm, m, FaultConfig{
			Schedule:      sched,
			LevelDeadline: DefaultLevelDeadline(vm),
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		// Handlers were installed by RunWithFaults; re-wrap is impossible
		// post-hoc, so assert via the machine's own invariant instead: a
		// dead node must show Alive == false and the per-node fired work is
		// visible through the fault counters. The strong per-event check
		// lives in TestHandlersNeverFireAtDeadNodes below.
		for node, at := range deadAt {
			if vm.Alive(g.Coords()[node]) {
				t.Fatalf("seed %d: node %d scheduled dead at %d still alive",
					seedFrac.seed, node, at)
			}
		}
	}
}

func TestHandlersNeverFireAtDeadNodes(t *testing.T) {
	// The direct form of the property: run the raw machine under a crash
	// schedule with instrumented handlers and assert no delivery ever lands
	// on a node after its crash time.
	for seed := int64(1); seed <= 8; seed++ {
		vm, _ := newMachine(8)
		g := vm.Grid()
		k := vm.Kernel()
		sched := fault.MustRandom(g.N(), 0.3, 30, seed)
		dead := make(map[int]sim.Time)
		for _, c := range sched {
			dead[c.Node] = c.At
		}
		for _, c := range g.Coords() {
			c := c
			idx := g.Index(c)
			vm.Handle(c, func(m varch.Message) {
				if at, isDead := dead[idx]; isDead && k.Now() >= at {
					t.Fatalf("seed %d: handler fired at node %d at t=%d, dead since %d",
						seed, idx, k.Now(), at)
				}
			})
		}
		in := fault.NewInjector(k, g.N())
		in.Arm(sched, vm)
		// Blast traffic at every node from every corner across the window.
		rng := rand.New(rand.NewSource(seed))
		vm.SetLoss(0.1, rng)
		vm.SetReliability(fault.DefaultReliability())
		for i := 0; i < 200; i++ {
			from := g.Coords()[rng.Intn(g.N())]
			to := g.Coords()[rng.Intn(g.N())]
			k.At(sim.Time(1+rng.Intn(40)), func() { vm.Send(from, to, 1, nil) })
		}
		k.Run()
	}
}
