// Fault-tolerant execution of the synthesized labeling program. The plain
// driver (RunOnMachine) assumes every node survives and every message
// lands; under crashes the Figure 4 protocol deadlocks, because a leader
// waits forever for its 3-message quorum. RunWithFaults adds the two
// mechanisms a deployed WSN would use — both deterministic, so sweeps are
// reproducible:
//
//   - leader failover (routing level): SendToLeader resolves to the acting
//     leader, the first alive member of the block in row-major grid order.
//     Every follower can evaluate the same rule locally after a timeout, so
//     the redirected quorum traffic re-converges without any agreement
//     protocol. This is varch.Machine.SetFailover.
//
//   - per-level deadlines (protocol level): the acting level-k leader of
//     every block carries a watchdog at k·LevelDeadline. If the quorum
//     never arrived, the watchdog hoists whatever partial sub-graphs the
//     node holds at levels ≤ k and ships them up anyway. The root deadline
//     forces exfiltration of a partial summary — graceful degradation
//     measured as labeling coverage instead of an all-or-nothing round.
package synth

import (
	"fmt"
	"math/rand"

	"wsnva/internal/battery"
	"wsnva/internal/fault"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/program"
	"wsnva/internal/regions"
	"wsnva/internal/sim"
	"wsnva/internal/trace"
	"wsnva/internal/varch"
)

// FaultConfig parameterizes one fault-injected labeling round.
type FaultConfig struct {
	// Schedule lists the fail-stop crashes to inject.
	Schedule fault.Schedule
	// Loss is the per-attempt message loss probability, drawn from a
	// rand source seeded with LossSeed. Zero disables loss.
	Loss     float64
	LossSeed int64
	// Burst, if non-nil, replaces Bernoulli loss with a Gilbert–Elliott
	// burst channel seeded with BurstSeed (Loss/LossSeed are then ignored).
	Burst     *fault.GilbertElliott
	BurstSeed int64
	// Reliability arms the ARQ policy on the machine (zero value: off).
	Reliability fault.Reliability
	// Battery, if non-nil, meters every ledger charge and fail-stops nodes
	// whose cumulative spend crosses their budget — depletion deaths on top
	// of (or instead of) the scheduled crashes.
	Battery *battery.Bank
	// LevelDeadline is the per-level watchdog period: the acting level-k
	// leader force-promotes at k·LevelDeadline. It must comfortably exceed
	// the natural per-level latency, or the watchdogs will truncate healthy
	// rounds. Zero disables watchdogs — under crashes the round then stalls
	// and the result reports whatever was exfiltrated (usually nothing).
	LevelDeadline sim.Time
}

// DefaultLevelDeadline returns a watchdog period that dominates the natural
// per-level latency of a healthy round on vm's grid, with a wide margin, so
// a zero-fault round under watchdogs is indistinguishable from a plain one.
func DefaultLevelDeadline(vm *varch.Machine) sim.Time {
	side := vm.Grid().Cols
	return sim.Time(32 * side * side)
}

// FaultResult is the outcome of a fault-injected round.
type FaultResult struct {
	Final       *regions.Summary // first exfiltrated summary (nil: stalled)
	Completion  sim.Time         // kernel time of that exfiltration
	ExfilCoord  geom.Coord       // node that exfiltrated (acting root)
	RuleFirings int64
	// Coverage is the fraction of grid cells the exfiltrated summary
	// accounts for: 1 means the full map was labeled despite the faults.
	Coverage float64
	// Crashed is the number of nodes the schedule killed.
	Crashed int
	// ForcedPromotions counts watchdogs that actually hoisted and shipped
	// partial data; LeaderFailovers counts watchdog firings that found the
	// static leader dead and acted through a promoted follower.
	ForcedPromotions int64
	LeaderFailovers  int64
	// Depleted counts battery deaths and FirstDepletion their earliest
	// simulated time (0 if none) — distinct from Crashed, which counts only
	// the externally scheduled fail-stops.
	Depleted       int
	FirstDepletion sim.Time
	Stats          varch.FaultStats
}

// faultFx adapts the machine to program.Effector under faults: unlike the
// plain driver it accepts exfiltration from any acting root and keeps only
// the first one (a forced root watchdog may fire after a natural finish).
type faultFx struct {
	vm    *varch.Machine
	coord geom.Coord
	out   *FaultResult
}

func (f *faultFx) Send(level int, size int64, payload any) {
	f.vm.SendToLeader(f.coord, level, size, payload)
}

func (f *faultFx) Exfiltrate(result any) {
	if f.out.Final != nil {
		return
	}
	f.out.Final = result.(*regions.Summary)
	f.out.Completion = f.vm.Kernel().Now()
	f.out.ExfilCoord = f.coord
	emitExfiltrate(f.vm, f.coord)
}

func (f *faultFx) Compute(units int64) { f.vm.Compute(f.coord, units) }
func (f *faultFx) Sense(units int64)   { f.vm.Sense(f.coord, units) }

// RunWithFaults executes one labeling round on vm under cfg's fault load
// and returns the (possibly partial) outcome. The round is byte-
// deterministic: same machine, map, and config always produce the same
// result.
func RunWithFaults(vm *varch.Machine, m *field.BinaryMap, cfg FaultConfig) (*FaultResult, error) {
	h := vm.Hier
	g := h.Grid
	if m.Grid != g {
		return nil, fmt.Errorf("synth: map grid and machine grid differ")
	}
	if cfg.Burst != nil {
		if err := cfg.Burst.Validate(); err != nil {
			return nil, err
		}
		vm.SetBurstLoss(cfg.Burst.Process(cfg.BurstSeed))
	} else if cfg.Loss > 0 {
		vm.SetLoss(cfg.Loss, rand.New(rand.NewSource(cfg.LossSeed)))
	}
	vm.SetReliability(cfg.Reliability)
	vm.SetFailover(true)

	res := &FaultResult{Crashed: len(cfg.Schedule)}
	insts := make([]*program.Instance, g.N())
	for _, c := range g.Coords() {
		c := c
		fx := &faultFx{vm: vm, coord: c, out: res}
		spec := LabelingProgram(Config{Hier: h, Coord: c, Sense: SenseFromMap(m, c)})
		inst := program.NewInstance(spec, fx)
		wireTraceHooks(vm, inst, c)
		insts[g.Index(c)] = inst
		vm.Handle(c, func(msg varch.Message) {
			inst.OnMessage(msg.Payload, maxQuiescenceSteps)
		})
	}

	injector := fault.NewInjector(vm.Kernel(), g.N())
	injector.Arm(cfg.Schedule, vm)
	if cfg.Battery != nil {
		bank := cfg.Battery
		vm.AttachBattery(bank, injector)
		// Replace the default depletion route with one that also records the
		// result counters; the fail-stop itself is unchanged.
		bank.OnDeplete(func(node int) {
			res.Depleted++
			if res.Depleted == 1 {
				res.FirstDepletion = vm.Kernel().Now()
			}
			injector.Fail(node, vm)
		})
	}

	if cfg.LevelDeadline > 0 {
		for k := 1; k <= h.Levels; k++ {
			k := k
			deadline := sim.Time(k) * cfg.LevelDeadline
			for _, leader := range h.Leaders(k) {
				leader := leader
				// The watchdog is the block's collective responsibility, not
				// any single node's, so it is unowned: crashes never cancel
				// it, and whoever is acting leader at the deadline handles it.
				vm.Kernel().At(deadline, func() {
					watchdogFire(vm, h, insts, res, leader, k)
				})
			}
		}
	}

	phase(vm, "fault-labeling:start")
	for _, inst := range insts {
		inst.RunToQuiescence(maxQuiescenceSteps)
	}
	vm.Kernel().Run()
	phase(vm, "fault-labeling:end")
	for _, inst := range insts {
		res.RuleFirings += inst.Fired()
		// res only keeps summaries pulled out of the Envs (which survive a
		// Release), never the instances themselves, so they are recyclable.
		inst.Release()
	}
	if res.Final != nil {
		res.Coverage = float64(res.Final.CoveredCells()) / float64(g.N())
	}
	res.Stats = vm.FaultStats()
	return res, nil
}

// watchdogFire enforces the level-k deadline for one block: if the acting
// leader still holds un-shipped sub-graphs at levels ≤ k, they are hoisted
// into level k and transmitted — partial data beats no data once the
// deadline passes. Late arrivals after the deadline merge into the node's
// state but are never shipped (their quorum slot is disarmed), the standard
// deadline-protocol trade.
func watchdogFire(vm *varch.Machine, h *varch.Hierarchy, insts []*program.Instance, res *FaultResult, leader geom.Coord, k int) {
	g := h.Grid
	acting := geom.Coord{Col: -1, Row: -1}
	for _, c := range h.Followers(leader, k) {
		if vm.Alive(c) {
			acting = c
			break
		}
	}
	if acting.Col < 0 {
		return // the whole block is dead; its data died with it
	}
	if k == h.Levels && res.Final != nil {
		return // the round already exfiltrated; nothing to force
	}
	inst := insts[g.Index(acting)]
	env := inst.Env
	if int(env.Ints[VarRecLevel]) > k {
		return // the block finished level k naturally
	}
	sg := env.Objs[VarSubGraph].([]*regions.Summary)
	for j := 0; j < k; j++ {
		if sg[j] == nil {
			continue
		}
		if sg[k] == nil {
			sg[k] = sg[j]
		} else {
			sg[k].Merge(sg[j])
		}
		sg[j] = nil
	}
	if sg[k] == nil {
		return // nothing reached this block's level; nothing to ship
	}
	mr := env.Objs[VarMsgsRecv].([]int64)
	for j := 0; j <= k; j++ {
		mr[j] = -1 // disarm the quorum rule at and below the deadline level
	}
	env.Ints[VarRecLevel] = int64(k)
	env.Bools[VarDone] = false
	env.Bools[VarTransmit] = true
	res.ForcedPromotions++
	if tr := vm.Tracer(); tr != nil {
		tr.EmitEvent(trace.Event{At: vm.Kernel().Now(), Kind: trace.Protocol,
			Node: acting.String(), ID: g.Index(acting), Col: acting.Col, Row: acting.Row,
			PeerCol: -1, PeerRow: -1, Level: k, Detail: "watchdog promote"})
	}
	if acting != leader {
		res.LeaderFailovers++
	}
	inst.RunToQuiescence(maxQuiescenceSteps)
}
