package synth

import (
	"math/rand"
	"testing"

	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/regions"
	"wsnva/internal/sim"
	"wsnva/internal/varch"
)

func runAlarm(t *testing.T, m *field.BinaryMap, quorum int) (*AlarmResult, *cost.Ledger) {
	t.Helper()
	h := varch.MustHierarchy(m.Grid)
	l := cost.NewLedger(cost.NewUniform(), m.Grid.N())
	vm := varch.NewMachine(h, sim.New(), l)
	res, err := RunAlarmOnMachine(vm, m, quorum)
	if err != nil {
		t.Fatal(err)
	}
	return res, l
}

func TestAlarmQuorumFires(t *testing.T) {
	g := geom.NewSquareGrid(8, 8)
	m := field.Parse(g,
		"........",
		"..###...",
		"..###...",
		"........",
		"........",
		"........",
		"........",
		"........",
	)
	res, _ := runAlarm(t, m, 5)
	if !res.Raised {
		t.Fatal("6 hot cells should satisfy quorum 5")
	}
	if res.AtCount < 5 || res.AtCount > 6 {
		t.Errorf("quorum fired at count %d", res.AtCount)
	}
	if res.FinalCount != 6 {
		t.Errorf("final count %d, want 6 (no double counting)", res.FinalCount)
	}
	// The alarm bounding box at quorum time is within the hot area.
	if res.Box.MinCol < 2 || res.Box.MaxCol > 4 || res.Box.MinRow < 1 || res.Box.MaxRow > 2 {
		t.Errorf("alarm box %+v escapes the hot area", res.Box)
	}
	if res.RaisedAt <= 0 {
		t.Error("alarm cannot be instantaneous from 2 hops away")
	}
}

func TestAlarmBelowQuorumSilent(t *testing.T) {
	g := geom.NewSquareGrid(8, 8)
	m := field.Parse(g,
		"#.......", "........", "........", "........",
		"........", "........", "........", ".......#",
	)
	res, _ := runAlarm(t, m, 3)
	if res.Raised {
		t.Error("2 hot cells must not satisfy quorum 3")
	}
	if res.FinalCount != 2 {
		t.Errorf("root should still have counted %d alarms, got %d", 2, res.FinalCount)
	}
}

func TestAlarmNothingBurningCostsOnlySensing(t *testing.T) {
	// The event-driven economy: with no events, the network spends nothing
	// beyond the mandatory sample — contrast with the labeling program,
	// whose cost is Θ(N) regardless.
	g := geom.NewSquareGrid(16, 16)
	m := field.Threshold(field.Constant{Value: 0}, g, 0.5, 0)
	res, l := runAlarm(t, m, 1)
	if res.Raised || res.FinalCount != 0 {
		t.Error("nothing burns, nothing fires")
	}
	if l.Units(cost.Tx) != 0 || l.Units(cost.Rx) != 0 || l.Units(cost.Compute) != 0 {
		t.Errorf("idle network moved data: tx=%d rx=%d compute=%d",
			l.Units(cost.Tx), l.Units(cost.Rx), l.Units(cost.Compute))
	}
	if l.Units(cost.Sense) != int64(g.N()) {
		t.Errorf("sense units = %d, want one per node", l.Units(cost.Sense))
	}
}

func TestAlarmEnergyScalesWithEvents(t *testing.T) {
	g1 := geom.NewSquareGrid(16, 16)
	small := field.FromBits(g1, make([]bool, g1.N()))
	small.Bits[g1.Index(geom.Coord{Col: 9, Row: 9})] = true
	_, lSmall := runAlarm(t, small, 999)

	g2 := geom.NewSquareGrid(16, 16)
	big := field.FromBits(g2, make([]bool, g2.N()))
	for col := 8; col < 16; col++ {
		for row := 8; row < 16; row++ {
			big.Bits[g2.Index(geom.Coord{Col: col, Row: row})] = true
		}
	}
	_, lBig := runAlarm(t, big, 999)
	if lBig.Metrics().Total < 10*lSmall.Metrics().Total {
		t.Errorf("64 alarms (%d units) should cost >>1 alarm (%d units)",
			lBig.Metrics().Total, lSmall.Metrics().Total)
	}
}

func TestAlarmCountExactOnRandomMaps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := geom.NewSquareGrid(8, 8)
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, g.N())
		hot := 0
		for i := range bits {
			if rng.Intn(4) == 0 {
				bits[i] = true
				hot++
			}
		}
		m := field.FromBits(g, bits)
		res, _ := runAlarm(t, m, 1)
		if res.FinalCount != hot {
			t.Errorf("seed %d: counted %d alarms, want %d", seed, res.FinalCount, hot)
		}
		if hot > 0 != res.Raised {
			t.Errorf("seed %d: raised=%v with %d hot cells, quorum 1", seed, res.Raised, hot)
		}
		if res.Raised && res.Box != bboxOfMap(m) && res.AtCount == hot {
			// Box at quorum time covers the alarms seen so far; only when
			// the quorum fired on the last alarm must it cover everything.
			t.Errorf("seed %d: final box %+v != map bbox %+v", seed, res.Box, bboxOfMap(m))
		}
	}
}

func bboxOfMap(m *field.BinaryMap) regions.BBox {
	var box regions.BBox
	first := true
	for _, c := range m.Grid.Coords() {
		if !m.At(c) {
			continue
		}
		b := regions.BBox{MinCol: c.Col, MinRow: c.Row, MaxCol: c.Col, MaxRow: c.Row}
		if first {
			box = b
			first = false
		} else {
			box = box.Union(b)
		}
	}
	return box
}

func TestAlarmListing(t *testing.T) {
	g := geom.NewSquareGrid(4, 4)
	h := varch.MustHierarchy(g)
	spec := AlarmProgram(AlarmConfig{
		Hier: h, Coord: geom.Coord{}, Hot: func() bool { return false }, Quorum: 2,
	})
	listing := spec.Listing()
	for _, want := range []string{"alarmTotal", "quorum", "exfiltrate"} {
		if !contains(listing, want) {
			t.Errorf("alarm listing missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestAlarmQuorumValidation(t *testing.T) {
	g := geom.NewSquareGrid(4, 4)
	h := varch.MustHierarchy(g)
	defer func() {
		if recover() == nil {
			t.Error("quorum 0 should panic")
		}
	}()
	AlarmProgram(AlarmConfig{Hier: h, Coord: geom.Coord{}, Hot: func() bool { return false }, Quorum: 0})
}
