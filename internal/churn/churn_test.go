package churn

import (
	"reflect"
	"testing"

	"wsnva/internal/sim"
)

func TestNormalizeOrdersByAtNodeOp(t *testing.T) {
	s := Schedule{
		{Node: 3, At: 10, Op: Wake},
		{Node: 1, At: 10, Op: Sleep},
		{Node: 0, At: 5, Op: Depart},
		{Node: 3, At: 10, Op: Sleep},
	}
	got := s.Normalize()
	want := Schedule{
		{Node: 0, At: 5, Op: Depart},
		{Node: 1, At: 10, Op: Sleep},
		{Node: 3, At: 10, Op: Sleep},
		{Node: 3, At: 10, Op: Wake},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("normalized %v, want %v", got, want)
	}
	// Normalize copies: the input must be untouched.
	if s[0].Node != 3 {
		t.Error("Normalize mutated its receiver")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		n    int
		ok   bool
	}{
		{"empty", nil, 4, true},
		{"good", Schedule{{Node: 3, At: 0, Op: Arrive}}, 4, true},
		{"node high", Schedule{{Node: 4, At: 0, Op: Sleep}}, 4, false},
		{"node negative", Schedule{{Node: -1, At: 0, Op: Sleep}}, 4, false},
		{"time negative", Schedule{{Node: 0, At: -2, Op: Sleep}}, 4, false},
		{"bad op", Schedule{{Node: 0, At: 0, Op: Op(99)}}, 4, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(c.n); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBatchesGroupEqualTimes(t *testing.T) {
	s := Schedule{
		{Node: 2, At: 10, Op: Sleep},
		{Node: 0, At: 5, Op: Depart},
		{Node: 1, At: 10, Op: Sleep},
	}
	b := s.Batches()
	if len(b) != 2 || b[0].At != 5 || b[1].At != 10 {
		t.Fatalf("batches: %+v", b)
	}
	if len(b[0].Events) != 1 || len(b[1].Events) != 2 {
		t.Fatalf("batch sizes: %+v", b)
	}
	if b[1].Events[0].Node != 1 || b[1].Events[1].Node != 2 {
		t.Errorf("batch order: %+v", b[1].Events)
	}
}

func TestHorizonAndMerge(t *testing.T) {
	a := Departures(7, 1, 0)
	b := Arrivals(3, 2)
	m := Merge(a, b)
	if m.Horizon() != 7 {
		t.Errorf("horizon %d, want 7", m.Horizon())
	}
	if len(m) != 3 || m[0].At != 3 || m[0].Op != Arrive {
		t.Errorf("merged: %v", m)
	}
	if m[1].Node != 0 || m[2].Node != 1 {
		t.Errorf("departures not node-ordered: %v", m)
	}
}

func TestDutyCycleAlternatesAndStaysInHorizon(t *testing.T) {
	s := DutyCycle([]int{0, 1}, 10, 6, 40)
	if err := s.Validate(2); err != nil {
		t.Fatal(err)
	}
	// Per node: strictly alternating Sleep/Wake starting with Sleep,
	// all within the horizon.
	perNode := map[int][]Event{}
	for _, e := range s {
		if e.At > 40 || e.At < 0 {
			t.Errorf("event %v outside horizon", e)
		}
		perNode[e.Node] = append(perNode[e.Node], e)
	}
	for n, evs := range perNode {
		for i, e := range evs {
			want := Sleep
			if i%2 == 1 {
				want = Wake
			}
			if e.Op != want {
				t.Errorf("node %d event %d is %v, want %v (%v)", n, i, e.Op, want, evs)
			}
			if i > 0 && evs[i-1].At >= e.At {
				t.Errorf("node %d events not time-ordered: %v", n, evs)
			}
		}
	}
	// Stagger: node 1's first sleep is phase-shifted from node 0's.
	if perNode[0][0].At == perNode[1][0].At {
		t.Error("duty cycles not staggered")
	}
}

func TestDutyCycleValidation(t *testing.T) {
	for _, f := range []func(){
		func() { DutyCycle([]int{0}, 0, 1, 10) },
		func() { DutyCycle([]int{0}, 10, 0, 10) },
		func() { DutyCycle([]int{0}, 10, 10, 10) },
		func() { DutyCycle([]int{0}, 10, 5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid duty cycle did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPoissonDeterministicAndToggling(t *testing.T) {
	a := Poisson(8, 0.5, 200, 42)
	b := Poisson(8, 0.5, 200, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("rate 0.5 over 200 units produced no events")
	}
	if err := a.Validate(8); err != nil {
		t.Fatal(err)
	}
	// Replaying must keep every node's state consistent: a sleep only
	// hits an awake node, a wake only a sleeping one.
	asleep := make([]bool, 8)
	for _, e := range a {
		switch e.Op {
		case Sleep:
			if asleep[e.Node] {
				t.Fatalf("sleep of sleeping node: %v", e)
			}
			asleep[e.Node] = true
		case Wake:
			if !asleep[e.Node] {
				t.Fatalf("wake of awake node: %v", e)
			}
			asleep[e.Node] = false
		default:
			t.Fatalf("unexpected op %v", e.Op)
		}
	}
	if c := Poisson(8, 0.5, 200, 43); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	if h := a.Horizon(); h > 200 || h < 1 {
		t.Errorf("horizon %d outside (0,200]", h)
	}
}

func TestPoissonValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Poisson(0, 1, 10, 1) },
		func() { Poisson(4, 0, 10, 1) },
		func() { Poisson(4, 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid poisson did not panic")
				}
			}()
			f()
		}()
	}
}

func TestOpStringAndDown(t *testing.T) {
	if Sleep.String() != "sleep" || Wake.String() != "wake" ||
		Depart.String() != "depart" || Arrive.String() != "arrive" {
		t.Error("op strings wrong")
	}
	if Op(99).String() == "" {
		t.Error("unknown op has empty string")
	}
	if !Sleep.Down() || !Depart.Down() || Wake.Down() || Arrive.Down() {
		t.Error("Down() classification wrong")
	}
	var s Schedule
	if s.Horizon() != sim.Time(0) {
		t.Error("empty horizon nonzero")
	}
}
