// Package churn models topology churn — the arrivals, departures, and
// duty-cycle sleep/wake transitions a long-lived deployment sees — as a
// typed, deterministic schedule of first-class simulation events.
//
// The package is deliberately engine-agnostic: it depends only on the
// simulation clock. The emulation layer (emul.RunChurn) replays a
// Schedule against the physical machine with incremental routing repair
// after every disturbance; the sharded kernel (shard.Config.Churn)
// replays the same Schedule as pre-scheduled per-shard events, oracle-
// differentially. Both consume the normalized order defined here, so a
// schedule means the same thing everywhere.
//
// Sleep and Wake are the reversible pair (the radio's tri-state suspend
// gate); Depart and Arrive are the long-lived pair (a node leaving the
// network, and a node appearing — or returning — at its position and
// announcing itself). At the transport layer all four are suspensions
// and resumptions of the same radio; the distinction matters to the
// layers above, which treat an arrival as a trigger to seed the node's
// base table and re-teach its neighborhood.
package churn

import (
	"fmt"
	"math/rand"
	"sort"

	"wsnva/internal/sim"
)

// Op is a churn transition.
type Op int

const (
	// Sleep suspends a node's radio reversibly (duty-cycle off phase).
	Sleep Op = iota
	// Wake resumes a sleeping radio (duty-cycle on phase).
	Wake
	// Depart removes a node from the network for an extended absence.
	Depart
	// Arrive powers a node on at its position: it seeds its base table
	// and announces itself to its neighborhood.
	Arrive
	numOps
)

func (o Op) String() string {
	switch o {
	case Sleep:
		return "sleep"
	case Wake:
		return "wake"
	case Depart:
		return "depart"
	case Arrive:
		return "arrive"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Down reports whether the op silences the node (Sleep, Depart) rather
// than restoring it (Wake, Arrive).
func (o Op) Down() bool { return o == Sleep || o == Depart }

// Event is one timed transition of one node.
type Event struct {
	Node int
	At   sim.Time
	Op   Op
}

// Schedule is a set of churn events. The zero value (nil) means no
// churn. Builders return normalized schedules; hand-built ones should be
// passed through Normalize before replay so equal-time events apply in
// the defined (At, Node, Op) order on every engine.
type Schedule []Event

// Normalize returns a copy sorted by (At, Node, Op) — the replay order
// every engine uses, making equal-time batches deterministic.
func (s Schedule) Normalize() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// Validate checks every event against a deployment of n nodes: node ids
// in range, times non-negative, ops known. It returns an error rather
// than clamping — a silently repaired schedule produces sweeps that look
// plausible and mean nothing.
func (s Schedule) Validate(n int) error {
	for i, e := range s {
		if e.Node < 0 || e.Node >= n {
			return fmt.Errorf("churn: event %d targets node %d outside [0,%d)", i, e.Node, n)
		}
		if e.At < 0 {
			return fmt.Errorf("churn: event %d at negative time %d", i, e.At)
		}
		if e.Op < 0 || e.Op >= numOps {
			return fmt.Errorf("churn: event %d has unknown op %d", i, int(e.Op))
		}
	}
	return nil
}

// Batch is every event sharing one disturbance instant.
type Batch struct {
	At     sim.Time
	Events []Event
}

// Batches groups a schedule into equal-time disturbance batches in
// normalized order. A batch is the unit of repair: the emulation harness
// applies all of a batch's transitions, then re-converges the touched
// neighborhoods once.
func (s Schedule) Batches() []Batch {
	norm := s.Normalize()
	var out []Batch
	for _, e := range norm {
		if len(out) == 0 || out[len(out)-1].At != e.At {
			out = append(out, Batch{At: e.At})
		}
		last := &out[len(out)-1]
		last.Events = append(last.Events, e)
	}
	return out
}

// Horizon returns the time of the last event, or 0 for an empty
// schedule.
func (s Schedule) Horizon() sim.Time {
	var h sim.Time
	for _, e := range s {
		if e.At > h {
			h = e.At
		}
	}
	return h
}

// Merge combines schedules into one normalized schedule.
func Merge(parts ...Schedule) Schedule {
	var out Schedule
	for _, p := range parts {
		out = append(out, p...)
	}
	return out.Normalize()
}

// Departures schedules the nodes to depart at the given instant.
func Departures(at sim.Time, nodes ...int) Schedule {
	out := make(Schedule, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, Event{Node: n, At: at, Op: Depart})
	}
	return out.Normalize()
}

// Arrivals schedules the nodes to arrive at the given instant.
func Arrivals(at sim.Time, nodes ...int) Schedule {
	out := make(Schedule, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, Event{Node: n, At: at, Op: Arrive})
	}
	return out.Normalize()
}

// DutyCycle builds the periodic sleep/wake schedule of a radio duty
// cycle: each listed node repeats an on-phase of onFor followed by an
// off-phase of period-onFor, until horizon. Phases are staggered evenly
// across the listed nodes so the network never sleeps all at once. It
// panics on a non-positive period, an onFor outside (0, period), or a
// negative horizon — schedule knobs are validated, never repaired.
func DutyCycle(nodes []int, period, onFor, horizon sim.Time) Schedule {
	if period <= 0 {
		panic(fmt.Sprintf("churn: duty-cycle period %d must be positive", period))
	}
	if onFor <= 0 || onFor >= period {
		panic(fmt.Sprintf("churn: duty-cycle on-phase %d outside (0,%d)", onFor, period))
	}
	if horizon < 0 {
		panic(fmt.Sprintf("churn: negative horizon %d", horizon))
	}
	var out Schedule
	for i, n := range nodes {
		phase := sim.Time(0)
		if len(nodes) > 0 {
			phase = sim.Time(int64(i) * int64(period) / int64(len(nodes)))
		}
		for cycle := sim.Time(0); ; cycle += period {
			sleepAt := phase + cycle + onFor
			if sleepAt > horizon {
				break
			}
			out = append(out, Event{Node: n, At: sleepAt, Op: Sleep})
			wakeAt := phase + cycle + period
			if wakeAt <= horizon {
				out = append(out, Event{Node: n, At: wakeAt, Op: Wake})
			}
		}
	}
	return out.Normalize()
}

// Poisson builds a random churn schedule: transition instants arrive as
// a Poisson process of the given rate (expected events per unit time)
// over [1, horizon], each toggling one uniformly chosen node — an awake
// node sleeps, a sleeping node wakes. The result is a deterministic
// function of (n, rate, horizon, seed), so sweeps replay bit-for-bit.
// It panics on a non-positive n, rate, or horizon.
func Poisson(n int, rate float64, horizon sim.Time, seed int64) Schedule {
	if n <= 0 {
		panic(fmt.Sprintf("churn: poisson over %d nodes", n))
	}
	if rate <= 0 {
		panic(fmt.Sprintf("churn: poisson rate %v must be positive", rate))
	}
	if horizon <= 0 {
		panic(fmt.Sprintf("churn: poisson horizon %d must be positive", horizon))
	}
	rng := rand.New(rand.NewSource(seed))
	asleep := make([]bool, n)
	var out Schedule
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		at := sim.Time(t) + 1
		if at > horizon {
			break
		}
		node := rng.Intn(n)
		op := Sleep
		if asleep[node] {
			op = Wake
		}
		asleep[node] = !asleep[node]
		out = append(out, Event{Node: node, At: at, Op: op})
	}
	return out.Normalize()
}
