// Package loadgen drives a mission server with concurrent clients and
// measures what the content-addressed cache buys: the same mission set
// is submitted twice, once cold (every request simulates) and once
// cached (every request is a digest lookup), and the report carries
// requests/sec plus p50/p99 latency for both phases. The ratio between
// the two is the cache's throughput multiplier — the number BENCH_3.json
// commits and `benchtab -compare` gates.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config parameterizes one load run. Zero values select the defaults.
type Config struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
	// Missions is the number of distinct mission specs (default 16) —
	// seeds 1..Missions over one small labeling workload, so the cold
	// phase simulates Missions times.
	Missions int
	// Repeats is how many times the cached phase resubmits each mission
	// (default 8).
	Repeats int
	// Clients is the number of concurrent requesters (default 8); each
	// presents its own X-Tenant so the run exercises the per-tenant
	// admission path without tripping it.
	Clients int
	// Side is the mission grid side (default 16). The default is sized
	// so one cold mission costs real simulation time on a single core —
	// the speedup a cache can show is bounded by how much work it skips.
	Side int
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Missions <= 0 {
		c.Missions = 16
	}
	if c.Repeats <= 0 {
		c.Repeats = 8
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Side <= 0 {
		c.Side = 16
	}
	return c
}

// Phase is one measured request wave.
type Phase struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	WallNanos int64   `json:"wall_ns"`
	MeanNanos int64   `json:"mean_ns"`
	P50Nanos  int64   `json:"p50_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	RPS       float64 `json:"rps"`
}

// Report is a completed load run: the cold wave (cache empty, every
// request simulates) and the cached wave (every request hits).
type Report struct {
	Missions int   `json:"missions"`
	Repeats  int   `json:"repeats"`
	Clients  int   `json:"clients"`
	Side     int   `json:"side"`
	Cold     Phase `json:"cold"`
	Cached   Phase `json:"cached"`
}

// Speedup is the cached-over-cold throughput multiplier.
func (r *Report) Speedup() float64 {
	if r.Cold.RPS <= 0 {
		return 0
	}
	return r.Cached.RPS / r.Cold.RPS
}

// specJSON builds the i'th mission: one small labeling workload where
// only the seed varies, so every mission digests differently but costs
// the same.
func specJSON(side int, seed int) []byte {
	return []byte(fmt.Sprintf(
		`{"workload":"labeling","side":%d,"field":"blobs","thresh":0.5,"seed":%d}`,
		side, seed))
}

// Run executes the two waves against cfg.BaseURL and returns the
// measurements. An error means the server was unreachable or answered a
// submission with a non-200 status — a load run against a broken server
// is not a measurement.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		Missions: cfg.Missions, Repeats: cfg.Repeats,
		Clients: cfg.Clients, Side: cfg.Side,
	}

	cold := make([][]byte, cfg.Missions)
	for i := range cold {
		cold[i] = specJSON(cfg.Side, i+1)
	}
	var err error
	rep.Cold, err = wave(cfg, "cold", cold)
	if err != nil {
		return nil, err
	}

	cached := make([][]byte, 0, cfg.Missions*cfg.Repeats)
	for rep := 0; rep < cfg.Repeats; rep++ {
		cached = append(cached, cold...)
	}
	rep.Cached, err = wave(cfg, "cached", cached)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// wave submits every spec once, spread across cfg.Clients concurrent
// tenants, and aggregates latency.
func wave(cfg Config, name string, specs [][]byte) (Phase, error) {
	type res struct {
		d   time.Duration
		err error
	}
	results := make([]res, len(specs))
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				results[i].err = submit(cfg.Client, cfg.BaseURL, tenant, specs[i])
				results[i].d = time.Since(t0)
			}
		}(fmt.Sprintf("load-%d", c))
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	ph := Phase{Name: name, Requests: len(specs), WallNanos: wall.Nanoseconds()}
	lat := make([]int64, 0, len(specs))
	var sum int64
	for _, r := range results {
		if r.err != nil {
			ph.Errors++
			if ph.Errors == 1 {
				return ph, fmt.Errorf("loadgen: %s wave: %w", name, r.err)
			}
			continue
		}
		lat = append(lat, r.d.Nanoseconds())
		sum += r.d.Nanoseconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		ph.MeanNanos = sum / int64(len(lat))
		ph.P50Nanos = lat[len(lat)/2]
		ph.P99Nanos = lat[(len(lat)*99)/100]
	}
	if wall > 0 {
		ph.RPS = float64(len(specs)-ph.Errors) / wall.Seconds()
	}
	return ph, nil
}

func submit(client *http.Client, base, tenant string, spec []byte) error {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/missions", bytes.NewReader(spec))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// benchRecord/benchReport mirror cmd/benchtab's -bench-json layout so
// `benchtab -compare` can diff load reports with its usual
// condition-refusal (workers, GOMAXPROCS, shards, quick).
type benchRecord struct {
	ID         string `json:"id"`
	WallNanos  int64  `json:"wall_ns"`
	Mallocs    uint64 `json:"mallocs"`
	BytesAlloc uint64 `json:"bytes_alloc"`
}

type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"gomaxprocs,omitempty"`
	Workers    int           `json:"workers"`
	Shards     int           `json:"shards,omitempty"`
	Quick      bool          `json:"quick"`
	Records    []benchRecord `json:"records"`
	TotalNanos int64         `json:"total_wall_ns"`
}

// BenchJSON renders the report in benchtab's schema: per-phase p50, p99,
// and mean-per-request wall times as records, condition metadata pinned
// so reports collected under different worker widths refuse to compare.
func (r *Report) BenchJSON(workers int, quick bool) ([]byte, error) {
	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Quick:      quick,
		TotalNanos: r.Cold.WallNanos + r.Cached.WallNanos,
	}
	for _, ph := range []Phase{r.Cold, r.Cached} {
		rep.Records = append(rep.Records,
			benchRecord{ID: "serve/" + ph.Name + "/p50", WallNanos: ph.P50Nanos},
			benchRecord{ID: "serve/" + ph.Name + "/p99", WallNanos: ph.P99Nanos},
			benchRecord{ID: "serve/" + ph.Name + "/mean", WallNanos: ph.MeanNanos},
		)
	}
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
