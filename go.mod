module wsnva

go 1.22
