// Quickstart: the smallest end-to-end use of the virtual architecture.
//
// It builds the paper's 4x4 virtual grid, senses a synthetic hot spot,
// synthesizes the Figure 4 labeling program for every node, runs one round
// on the discrete-event machine, and prints the labeled regions with the
// uniform-cost-model bill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/sim"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
)

func main() {
	// The virtual architecture: a 4x4 oriented grid with hierarchical
	// groups and the uniform cost model.
	grid := geom.NewSquareGrid(4, 40)
	hier := varch.MustHierarchy(grid)
	ledger := cost.NewLedger(cost.NewUniform(), grid.N())
	vm := varch.NewMachine(hier, sim.New(), ledger)

	// The phenomenon: one hot spot in the south-east, thresholded into a
	// binary feature map (Section 3.1's feature nodes).
	hot := field.Blobs{Items: []field.Blob{{Center: geom.Point{X: 30, Y: 30}, Sigma: 8, Peak: 1}}}
	m := field.Threshold(hot, grid, 0.5, 0)
	fmt.Printf("feature map (%d feature cells):\n%s\n", m.Count(), m)

	// Synthesize Figure 4 for every node and run one round.
	res, err := synth.RunOnMachine(vm, m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("labeling completed at t=%d with %d rule firings\n", res.Completion, res.RuleFirings)
	fmt.Printf("regions: %d\n", res.Final.Count())
	for _, r := range res.Final.Regions() {
		fmt.Printf("  region %d: %d cells, bbox cols %d-%d rows %d-%d\n",
			r.Label, r.Cells, r.Box.MinCol, r.Box.MaxCol, r.Box.MinRow, r.Box.MaxRow)
	}
	met := ledger.Metrics()
	fmt.Printf("energy: total %d units, hottest node %d units (balance %.2f)\n",
		met.Total, met.Max, met.Balance)
}
