// Clustered deployment with a tree virtual topology: the scenario for
// which the paper says "other virtual topologies such as a tree could be
// more appropriate" (Section 3.2). Nodes are dropped in tight clusters —
// say, from a few airdrops — so most grid cells are empty and the grid
// virtual architecture cannot be emulated. The example builds a BFS
// spanning tree from a sink instead, then runs the tree's collective
// services: a census, a network-wide maximum reading, and a configuration
// dissemination, with the energy bill for each.
//
//	go run ./examples/clustered
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wsnva/internal/cost"
	"wsnva/internal/deploy"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/radio"
	"wsnva/internal/sim"
	"wsnva/internal/vtree"
)

func main() {
	terrain := geom.Rect{MinX: 0, MinY: 0, MaxX: 120, MaxY: 120}
	grid := geom.NewGrid(8, 8, terrain)

	// Find a connected clustered deployment (a few tries may be needed:
	// clusters can land out of radio reach of each other).
	var nw *deploy.Network
	var seed int64
	for seed = 1; seed < 100; seed++ {
		cand := deploy.New(180, terrain, 22, deploy.Clustered{Clusters: 4, Spread: 0.07}, rand.New(rand.NewSource(seed)))
		if cand.Connected() {
			nw = cand
			break
		}
	}
	if nw == nil {
		log.Fatal("no connected clustered deployment found")
	}
	fmt.Printf("deployment: %d nodes in 4 clusters (seed %d), avg degree %.1f\n", nw.N(), seed, nw.AvgDegree())

	occupied := 0
	for _, m := range nw.CellMembers(grid) {
		if len(m) > 0 {
			occupied++
		}
	}
	fmt.Printf("grid viability: %d of %d cells occupied -> grid emulation %s\n",
		occupied, grid.N(), map[bool]string{true: "possible", false: "IMPOSSIBLE"}[nw.OccupancyOK(grid)])

	// Tree virtual topology instead.
	ledger := cost.NewLedger(cost.NewUniform(), nw.N())
	med := radio.NewMedium(nw, sim.New(), ledger, rand.New(rand.NewSource(seed+1)), radio.Config{})
	tree := vtree.New(med)
	m := tree.Build(0)
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspanning tree from node 0: reached %d/%d nodes, depth %d, %d broadcasts + %d adoptions\n",
		m.Reached, nw.N(), m.MaxDepth, m.Broadcasts, m.Adoptions)
	buildEnergy := ledger.Metrics().Total

	// Census: how many nodes are alive?
	before := ledger.Metrics().Total
	count, msgs := tree.Aggregate(func(int) int64 { return 1 }, func(a, b int64) int64 { return a + b })
	fmt.Printf("\ncensus: %d nodes (%d messages, %d energy units)\n", count, msgs, ledger.Metrics().Total-before)

	// Max reading: the hottest sensor in the field.
	hot := field.Blobs{Base: 15, Items: []field.Blob{{Center: geom.Point{X: 90, Y: 30}, Sigma: 20, Peak: 20}}}
	reading := func(id int) int64 { return int64(hot.Sample(nw.Nodes[id].Pos, 0) * 10) }
	before = ledger.Metrics().Total
	maxR, _ := tree.Aggregate(reading, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	fmt.Printf("hottest reading: %.1f degrees (%d energy units)\n",
		float64(maxR)/10, ledger.Metrics().Total-before)

	// Dissemination: push a 4-unit configuration update to every node.
	before = ledger.Metrics().Total
	forwards := tree.Disseminate(4)
	fmt.Printf("config dissemination: %d forwards (%d energy units)\n", forwards, ledger.Metrics().Total-before)

	fmt.Printf("\ntotal so far: %d units (tree build %d); per node %.1f\n",
		ledger.Metrics().Total, buildEnergy, float64(ledger.Metrics().Total)/float64(nw.N()))
}
