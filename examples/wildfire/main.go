// Wildfire detection: the event-driven application regime. A fire ignites
// and spreads across the terrain; every epoch the network runs one alarm
// round — silent when nothing burns, with cost proportional to the number
// of alarmed cells otherwise. When the root's quorum fires, it disseminates
// an evacuation order to every node through the group-broadcast primitive,
// and the final epoch renders the fire front as contour polylines (the
// topographic output Section 3.1 motivates).
//
//	go run ./examples/wildfire
package main

import (
	"fmt"
	"log"

	"wsnva/internal/contour"
	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/sim"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
)

const (
	side    = 8
	quorum  = 4 // alarmed cells before the evacuation order goes out
	ignite  = 3 // epoch at which the fire starts
	epochs  = 8
	hotTemp = 0.5
)

func main() {
	grid := geom.NewSquareGrid(side, 80)
	hier := varch.MustHierarchy(grid)

	// The fire: a blob that appears at epoch `ignite` and grows.
	fire := func(epoch int) *field.BinaryMap {
		if epoch < ignite {
			return field.Threshold(field.Constant{Value: 0}, grid, hotTemp, 0)
		}
		growth := float64(epoch-ignite+1) * 7
		blaze := field.Blobs{Items: []field.Blob{
			{Center: geom.Point{X: 55, Y: 25}, Sigma: growth, Peak: 1},
		}}
		return field.Threshold(blaze, grid, hotTemp, 0)
	}

	fmt.Printf("%-6s %-6s %-8s %-10s %-12s %-10s\n",
		"epoch", "hot", "raised", "count", "energy", "evacuation")
	for epoch := 0; epoch < epochs; epoch++ {
		m := fire(epoch)
		ledger := cost.NewLedger(cost.NewUniform(), grid.N())
		vm := varch.NewMachine(hier, sim.New(), ledger)
		res, err := synth.RunAlarmOnMachine(vm, m, quorum)
		if err != nil {
			log.Fatal(err)
		}
		evac := "-"
		if res.Raised {
			// Evacuation order: the root disseminates a 2-unit command to
			// the whole network down the group hierarchy; every node's
			// program acknowledges by entering the evacuating state.
			before := ledger.Metrics().Total
			vm.GroupBroadcast(hier.Root(), hier.Levels, 2, synth.EvacMsg{})
			vm.Kernel().Run()
			evac = fmt.Sprintf("%d units -> %d/%d nodes evacuating",
				ledger.Metrics().Total-cost.Energy(before), res.EvacuatingCount(), grid.N())
		}
		raised := "no"
		if res.Raised {
			raised = fmt.Sprintf("yes@t=%d", res.RaisedAt)
		}
		fmt.Printf("%-6d %-6d %-8s %-10d %-12d %-10s\n",
			epoch, m.Count(), raised, res.FinalCount, ledger.Metrics().Total, evac)

		if epoch == epochs-1 {
			fmt.Printf("\nfinal fire front (%d burning cells):\n%s", m.Count(), m)
			loops := contour.Extract(m)
			fmt.Printf("\nfire-front contours (%d loops, perimeter %d):\n%s",
				len(loops), contour.Perimeter(loops), contour.Render(grid, loops))
		}
	}
	fmt.Println("\nnote the pre-ignition epochs: sensing-only cost, zero communication —")
	fmt.Println("the event-driven economy the paper contrasts with the periodic task graph.")
}
