// Dynamic retasking and preventive maintenance: the resource-management
// scenario of Section 3.1 ("querying the properties of sensor nodes such as
// residual energy levels is useful for resource management, dynamic
// retasking, preventive maintenance..."), combined with the leader-rotation
// variant of Section 5.2.
//
// The example runs the full physical stack — deployment, topology
// emulation, and per-cell leader election — then simulates many duty
// cycles in which cell leaders burn energy. Every few cycles leadership is
// re-elected on residual energy with previous leaders excluded (rotation),
// and the network answers a *residual-energy topographic query*: the
// labeling algorithm is run over the feature map "cells whose leader has
// spent more than the maintenance threshold", locating the worn-out regions
// a maintenance crew should visit.
//
//	go run ./examples/retasking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wsnva/internal/binding"
	"wsnva/internal/cost"
	"wsnva/internal/deploy"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/radio"
	"wsnva/internal/regions"
	"wsnva/internal/sim"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
	"wsnva/internal/vtopo"
)

const (
	side        = 4
	density     = 8
	cycles      = 30
	rotateEvery = 5
	workPerDuty = 40   // energy a leader spends per duty cycle
	wornOut     = 1100 // maintenance threshold (energy units spent)
)

func main() {
	grid := geom.NewSquareGrid(side, 40)
	rng := rand.New(rand.NewSource(11))
	nw, _, err := deploy.Generate(side*side*density, grid, grid.CellSide()*1.3, deploy.UniformRandom{}, rng, 100)
	if err != nil {
		log.Fatal(err)
	}
	physLedger := cost.NewLedger(cost.NewUniform(), nw.N())
	med := radio.NewMedium(nw, sim.New(), physLedger, rand.New(rand.NewSource(12)), radio.Config{})
	if m := vtopo.New(med, grid).Run(); !m.Complete {
		log.Fatal("emulation incomplete")
	}

	// Initial binding (closest-to-center) plus the managed rotation service.
	rot, err := binding.NewRotator(med, grid, physLedger)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d nodes, %d cells, initial leaders elected by distance\n\n", nw.N(), grid.N())

	for cycle := 1; cycle <= cycles; cycle++ {
		// Leaders burn energy doing the cell's share of the duty cycle.
		for _, id := range rot.Current().Leaders {
			physLedger.Charge(id, cost.Compute, workPerDuty)
		}
		if cycle%rotateEvery != 0 {
			continue
		}
		res, err := rot.Rotate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %2d: rotated leadership in %d broadcasts; %d distinct nodes have led so far\n",
			cycle, res.Broadcasts, rot.DistinctLeaders())
	}

	// Preventive-maintenance query: label the worn-out regions. The feature
	// map marks cells whose *most-drained member* crossed the threshold.
	bits := make([]bool, grid.N())
	for idx, members := range nw.CellMembers(grid) {
		for _, id := range members {
			if physLedger.Energy(id) >= wornOut {
				bits[idx] = true
				break
			}
		}
	}
	m := field.FromBits(grid, bits)
	fmt.Printf("\nworn-out map after %d cycles (threshold %d units):\n%s\n", cycles, wornOut, m)

	hier := varch.MustHierarchy(grid)
	appLedger := cost.NewLedger(cost.NewUniform(), grid.N())
	vm := varch.NewMachine(hier, sim.New(), appLedger)
	resQ, err := synth.RunOnMachine(vm, m)
	if err != nil {
		log.Fatal(err)
	}
	truth := regions.Label(m)
	fmt.Printf("worn-out regions found in-network: %d (ground truth %d)\n", resQ.Final.Count(), truth.Count)
	for _, r := range resQ.Final.Regions() {
		fmt.Printf("  maintenance zone %d: %d cells, bbox cols %d-%d rows %d-%d\n",
			r.Label, r.Cells, r.Box.MinCol, r.Box.MaxCol, r.Box.MinRow, r.Box.MaxRow)
	}
	fmt.Printf("\nrotation spread leadership across %d of %d nodes (load spread %.2f)\n",
		rot.DistinctLeaders(), nw.N(), rot.Spread())
}
