// Target tracking: the example application the paper's own methodology
// figure is annotated with ("Target tracking, micro-climate monitoring,
// wildfire detection"). A vehicle crosses the terrain; each epoch the
// event-driven tracking program aggregates weighted detections up the
// group hierarchy and the root computes a position estimate. Cost follows
// the detection footprint — nodes away from the target never transmit.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"wsnva/internal/cost"
	"wsnva/internal/geom"
	"wsnva/internal/sim"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
)

const (
	side   = 16
	epochs = 9
	radius = 1.8 // detection radius in cells
)

func main() {
	grid := geom.NewSquareGrid(side, float64(side)*10)
	hier := varch.MustHierarchy(grid)

	// The target's true path: a gentle arc across the field.
	truePos := func(epoch int) (float64, float64) {
		t := float64(epoch) / float64(epochs-1)
		col := 1.5 + t*13.0
		row := 12.0 - 9.0*t + 3.5*math.Sin(t*math.Pi)
		return col, row
	}

	fmt.Printf("%-6s %-14s %-14s %-8s %-10s %-8s\n",
		"epoch", "true (c,r)", "estimate", "error", "detectors", "energy")
	var track []synth.TrackEstimate
	for epoch := 0; epoch < epochs; epoch++ {
		tc, tr := truePos(epoch)
		strength := func(c geom.Coord) float64 {
			dx, dy := float64(c.Col)-tc, float64(c.Row)-tr
			s := math.Exp(-(dx*dx + dy*dy) / (2 * radius * radius))
			if s < 0.05 {
				return 0
			}
			return s
		}
		ledger := cost.NewLedger(cost.NewUniform(), grid.N())
		vm := varch.NewMachine(hier, sim.New(), ledger)
		est, err := synth.RunTrackingEpoch(vm, strength)
		if err != nil {
			log.Fatal(err)
		}
		track = append(track, *est)
		errStr, estStr := "-", "lost"
		if est.Valid {
			e := math.Hypot(est.Col-tc, est.Row-tr)
			errStr = fmt.Sprintf("%.2f", e)
			estStr = fmt.Sprintf("(%.1f,%.1f)", est.Col, est.Row)
		}
		fmt.Printf("%-6d (%4.1f,%4.1f)    %-14s %-8s %-10d %-8d\n",
			epoch, tc, tr, estStr, errStr, est.Detectors, ledger.Metrics().Total)
	}

	// Plot the estimated track.
	fmt.Println("\nestimated track ('0'-'8' = epoch, '.' = empty):")
	canvas := make([][]byte, side)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(".", side))
	}
	for i, est := range track {
		if !est.Valid {
			continue
		}
		col, row := int(est.Col+0.5), int(est.Row+0.5)
		if col >= 0 && col < side && row >= 0 && row < side {
			canvas[row][col] = byte('0' + i)
		}
	}
	for _, row := range canvas {
		fmt.Println(string(row))
	}
}
