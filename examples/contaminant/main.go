// Contaminant-plume monitoring: the topographic-querying application of
// Section 3.1 under a moving phenomenon. A plume drifts across the terrain;
// every epoch the network runs one labeling round, refreshes the
// distributed per-leader storage, and then answers decoupled queries from
// a sink at the grid origin — count of regions, the largest region, and a
// range query over a protected zone — with the communication bill of each
// query reported separately from the gathering cost.
//
//	go run ./examples/contaminant
package main

import (
	"fmt"
	"log"

	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/regions"
	"wsnva/internal/sim"
	"wsnva/internal/synth"
	"wsnva/internal/topoquery"
	"wsnva/internal/varch"
)

func main() {
	const side = 16
	grid := geom.NewSquareGrid(side, 160)
	hier := varch.MustHierarchy(grid)

	// Two sources; the west one leaks a plume that drifts east-southeast.
	plume := field.Blobs{Items: []field.Blob{
		{Center: geom.Point{X: 25, Y: 40}, Sigma: 16, Peak: 1, Drift: geom.Point{X: 0.035, Y: 0.012}},
		{Center: geom.Point{X: 120, Y: 120}, Sigma: 12, Peak: 0.8},
	}}
	const hazardous = 0.45
	// The protected zone: the NE quadrant of the terrain, in grid cells.
	zone := regions.BBox{MinCol: 8, MinRow: 0, MaxCol: 15, MaxRow: 7}
	sink := geom.Coord{}
	model := cost.NewUniform()

	fmt.Printf("%-6s %-6s %-8s %-14s %-18s %-12s %-12s\n",
		"epoch", "cells", "regions", "largest", "in NE zone", "gather E", "query E")
	for epoch := 0; epoch < 8; epoch++ {
		now := int64(epoch * 400)
		m := field.Threshold(plume, grid, hazardous, now)

		// Gather: one labeling round on the virtual architecture.
		ledger := cost.NewLedger(model, grid.N())
		vm := varch.NewMachine(hier, sim.New(), ledger)
		if _, err := synth.RunOnMachine(vm, m); err != nil {
			log.Fatal(err)
		}

		// Store: the per-leader summaries the round left in the network.
		store := topoquery.BuildStore(hier, m)

		// Query phase, decoupled from gathering (Section 3.1): consult the
		// level-2 leaders (16 storage nodes on this grid).
		count, qc1 := store.CountRegions(2, sink, model)
		largest, qc2 := store.EnumerateRegions(2, 1, sink, model)
		inZone, qc3 := store.CountInBox(2, zone, sink, model)

		largestDesc := "-"
		if len(largest) > 0 {
			largestDesc = fmt.Sprintf("%d cells @%d", largest[0].Cells, largest[0].Label)
		}
		fmt.Printf("%-6d %-6d %-8d %-14s %-18d %-12d %-12d\n",
			epoch, m.Count(), count, largestDesc, inZone,
			ledger.Metrics().Total, qc1.Energy+qc2.Energy+qc3.Energy)
	}
	// The storage level is a knob: consulting fewer, more aggregated
	// leaders trades per-response size against fan-out and distance.
	m := field.Threshold(plume, grid, hazardous, 0)
	store := topoquery.BuildStore(hier, m)
	fmt.Println("\ncount-query cost by storage level consulted (epoch 0):")
	for level := 0; level <= hier.Levels; level++ {
		_, qc := store.CountRegions(level, sink, model)
		fmt.Printf("  level %d: %3d storage nodes, energy %6d, latency %4d\n",
			level, qc.Contacts, qc.Energy, qc.Latency)
	}
	fmt.Println("\nthe drifting plume enters the NE protected zone in later epochs.")
}
