// Micro-climate monitoring: the periodic-sampling scenario the paper's
// introduction motivates. A temperature field with a slow diurnal drift is
// sampled every round; each round runs one synthesized labeling pass over
// the "warm region" feature map; the example tracks the region structure
// over time and projects system lifetime from the cumulative energy ledger
// under a fixed per-node battery budget.
//
//	go run ./examples/microclimate
package main

import (
	"fmt"
	"log"

	"wsnva/internal/cost"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/sim"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
)

const (
	side     = 8
	rounds   = 12
	interval = 500                  // latency units between sampling rounds
	battery  = cost.Energy(100_000) // per-node budget
)

func main() {
	grid := geom.NewSquareGrid(side, 80)
	hier := varch.MustHierarchy(grid)
	ledger := cost.NewLedger(cost.NewUniform(), grid.N())

	// A warm front drifting east across the terrain during the day.
	front := field.Blobs{
		Base: 18, // baseline temperature
		Items: []field.Blob{
			{Center: geom.Point{X: 10, Y: 40}, Sigma: 18, Peak: 9, Drift: geom.Point{X: 0.01}},
			{Center: geom.Point{X: 60, Y: 15}, Sigma: 9, Peak: 5},
		},
	}
	const warm = 24.0 // query: regions warmer than 24 degrees

	fmt.Printf("monitoring %dx%d grid, %d rounds, threshold %.0f°\n\n", side, side, rounds, warm)
	fmt.Printf("%-6s %-6s %-8s %-9s %-13s %-9s\n", "round", "warm", "regions", "latency", "total energy", "lifetime")
	for round := 0; round < rounds; round++ {
		now := int64(round * interval)
		m := field.Threshold(front, grid, warm, now)

		// Fresh kernel per round; the ledger accumulates across rounds.
		vm := varch.NewMachine(hier, sim.New(), ledger)
		res, err := synth.RunOnMachine(vm, m)
		if err != nil {
			log.Fatal(err)
		}
		// Lifetime: rounds until the hottest node drains, assuming each
		// future round costs what the average past round cost.
		perRound := cost.NewLedger(cost.NewUniform(), grid.N())
		perRound.Add(ledger)
		lifetime := "n/a"
		if maxE := ledger.Metrics().Max; maxE > 0 {
			lifetime = fmt.Sprint(int64(battery) * int64(round+1) / int64(maxE))
		}
		fmt.Printf("%-6d %-6d %-8d %-9d %-13d %-9s\n",
			round, m.Count(), res.Final.Count(), res.Completion, ledger.Metrics().Total, lifetime)
	}

	met := ledger.Metrics()
	fmt.Printf("\nafter %d rounds: total %d units, hottest node %d (balance %.2f)\n",
		rounds, met.Total, met.Max, met.Balance)
	fmt.Printf("first-node-death lifetime at this duty cycle: %d more rounds on a %d-unit battery\n",
		ledger.Lifetime(battery)*int64(rounds), battery)
}
