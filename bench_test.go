// Package wsnva_test is the benchmark harness: one testing.B target per
// experiment table in DESIGN.md's index (BenchmarkE1…BenchmarkE10, plus the
// A-series ablations), and micro-benchmarks for the hot substrate paths.
// Run `go test -bench=. -benchmem` here, or `go run ./cmd/benchtab` for the
// full printed tables.
package wsnva_test

import (
	"fmt"
	"math/rand"
	"testing"

	"wsnva/internal/cost"
	"wsnva/internal/deploy"
	"wsnva/internal/experiments"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/lockstep"
	"wsnva/internal/radio"
	"wsnva/internal/regions"
	"wsnva/internal/runtime"
	"wsnva/internal/sim"
	"wsnva/internal/stats"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
	"wsnva/internal/vtopo"
	"wsnva/internal/vtree"
	"wsnva/internal/wire"
)

var quick = experiments.Options{Quick: true}

// benchTable runs an experiment-table generator once per iteration and
// keeps the result alive.
func benchTable(b *testing.B, f func(experiments.Options) *stats.Table) {
	b.Helper()
	b.ReportAllocs()
	var sink *stats.Table
	for i := 0; i < b.N; i++ {
		sink = f(quick)
	}
	if sink.NumRows() == 0 {
		b.Fatal("empty table")
	}
}

func BenchmarkE1Mapping(b *testing.B)         { benchTable(b, experiments.E1Mapping) }
func BenchmarkE2Steps(b *testing.B)           { benchTable(b, experiments.E2Steps) }
func BenchmarkE3DCvsCentral(b *testing.B)     { benchTable(b, experiments.E3DCvsCentral) }
func BenchmarkE4Balance(b *testing.B)         { benchTable(b, experiments.E4Balance) }
func BenchmarkE5Emulation(b *testing.B)       { benchTable(b, experiments.E5Emulation) }
func BenchmarkE6Election(b *testing.B)        { benchTable(b, experiments.E6Election) }
func BenchmarkE7Loss(b *testing.B)            { benchTable(b, experiments.E7Loss) }
func BenchmarkE8Correspondence(b *testing.B)  { benchTable(b, experiments.E8Correspondence) }
func BenchmarkE9Collectives(b *testing.B)     { benchTable(b, experiments.E9Collectives) }
func BenchmarkE10Churn(b *testing.B)          { benchTable(b, experiments.E10Churn) }
func BenchmarkE11SyncSteps(b *testing.B)      { benchTable(b, experiments.E11SyncSteps) }
func BenchmarkE12TreeTopology(b *testing.B)   { benchTable(b, experiments.E12TreeTopology) }
func BenchmarkE13LossyEmulation(b *testing.B) { benchTable(b, experiments.E13LossyEmulation) }
func BenchmarkE14AlarmApp(b *testing.B)       { benchTable(b, experiments.E14AlarmApp) }
func BenchmarkE15Lifetime(b *testing.B)       { benchTable(b, experiments.E15Lifetime) }
func BenchmarkE16WholeApp(b *testing.B)       { benchTable(b, experiments.E16WholeApp) }
func BenchmarkE17FailureSweep(b *testing.B)   { benchTable(b, experiments.E17FailureSweep) }
func BenchmarkE18ReliableDelivery(b *testing.B) {
	benchTable(b, experiments.E18ReliableDelivery)
}
func BenchmarkE19NetworkLifetime(b *testing.B) {
	benchTable(b, experiments.E19NetworkLifetime)
}
func BenchmarkE20DepletionARQ(b *testing.B)  { benchTable(b, experiments.E20DepletionARQ) }
func BenchmarkE21ShardScaling(b *testing.B)  { benchTable(b, experiments.E21ShardScaling) }
func BenchmarkE22HazardScaling(b *testing.B) { benchTable(b, experiments.E22HazardScaling) }
func BenchmarkE23ChurnRepair(b *testing.B)   { benchTable(b, experiments.E23ChurnRepair) }
func BenchmarkE24ChurnShardScaling(b *testing.B) {
	benchTable(b, experiments.E24ChurnShardScaling)
}
func BenchmarkE26DeployGeneration(b *testing.B) {
	benchTable(b, experiments.E26DeployGeneration)
}
func BenchmarkA1Mappers(b *testing.B)    { benchTable(b, experiments.A1MappingAblation) }
func BenchmarkA2Workloads(b *testing.B)  { benchTable(b, experiments.A2FieldShapes) }
func BenchmarkA3CostModels(b *testing.B) { benchTable(b, experiments.A3CostSensitivity) }

// BenchmarkLabelRoundLockstep measures the synchronous engine.
func BenchmarkLabelRoundLockstep(b *testing.B) {
	for _, side := range []int{8, 16, 32} {
		side := side
		b.Run(sideName(side), func(b *testing.B) {
			g := geom.NewSquareGrid(side, float64(side))
			f := field.RandomBlobs(4, g.Terrain, float64(side)/8, float64(side)/5, rand.New(rand.NewSource(1)))
			m := field.Threshold(f, g, 0.5, 0)
			h := varch.MustHierarchy(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := cost.NewLedger(cost.NewUniform(), g.N())
				if _, err := lockstep.New(h, l).Run(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireCodec measures summary encode+decode round trips.
func BenchmarkWireCodec(b *testing.B) {
	g := geom.NewSquareGrid(32, 32)
	bits := make([]bool, g.N())
	rng := rand.New(rand.NewSource(5))
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
	}
	m := field.FromBits(g, bits)
	s := regions.LeafBlock(m, 0, 0, 16, 32)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendSummary(buf[:0], s)
		if _, err := wire.DecodeSummary(g, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeBuild measures spanning-tree construction on a clustered
// deployment.
func BenchmarkTreeBuild(b *testing.B) {
	terrain := geom.Rect{MaxX: 100, MaxY: 100}
	var nw *deploy.Network
	for seed := int64(0); seed < 50; seed++ {
		cand := deploy.New(200, terrain, 18, deploy.Clustered{Clusters: 4, Spread: 0.1}, rand.New(rand.NewSource(seed)))
		if cand.Connected() {
			nw = cand
			break
		}
	}
	if nw == nil {
		b.Fatal("no connected deployment")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := cost.NewLedger(cost.NewUniform(), nw.N())
		med := radio.NewMedium(nw, sim.New(), l, rand.New(rand.NewSource(7)), radio.Config{})
		p := vtree.New(med)
		if m := p.Build(0); m.Reached != nw.N() {
			b.Fatal("tree did not span")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkLabelRoundDES measures one full synthesized labeling round on
// the discrete-event machine per grid size.
func BenchmarkLabelRoundDES(b *testing.B) {
	for _, side := range []int{8, 16, 32} {
		side := side
		b.Run(sideName(side), func(b *testing.B) {
			g := geom.NewSquareGrid(side, float64(side))
			f := field.RandomBlobs(4, g.Terrain, float64(side)/8, float64(side)/5, rand.New(rand.NewSource(1)))
			m := field.Threshold(f, g, 0.5, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := varch.MustHierarchy(g)
				l := cost.NewLedger(cost.NewUniform(), g.N())
				vm := varch.NewMachine(h, sim.New(), l)
				if _, err := synth.RunOnMachine(vm, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLabelRoundConcurrent measures the goroutine-per-node engine.
func BenchmarkLabelRoundConcurrent(b *testing.B) {
	for _, side := range []int{8, 16} {
		side := side
		b.Run(sideName(side), func(b *testing.B) {
			g := geom.NewSquareGrid(side, float64(side))
			f := field.RandomBlobs(4, g.Terrain, float64(side)/8, float64(side)/5, rand.New(rand.NewSource(1)))
			m := field.Threshold(f, g, 0.5, 0)
			h := varch.MustHierarchy(g)
			rt := runtime.New(h)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Run(m, nil, runtime.Config{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSummaryMerge measures the boundary-merge operation on two half
// summaries of a random map.
func BenchmarkSummaryMerge(b *testing.B) {
	g := geom.NewSquareGrid(32, 32)
	bits := make([]bool, g.N())
	rng := rand.New(rand.NewSource(2))
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
	}
	m := field.FromBits(g, bits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		left := regions.LeafBlock(m, 0, 0, 16, 32)
		right := regions.LeafBlock(m, 16, 0, 16, 32)
		left.Merge(right)
	}
}

// BenchmarkGroundTruthLabel measures the sequential union-find labeler.
func BenchmarkGroundTruthLabel(b *testing.B) {
	g := geom.NewSquareGrid(64, 64)
	bits := make([]bool, g.N())
	rng := rand.New(rand.NewSource(3))
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
	}
	m := field.FromBits(g, bits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if regions.Label(m).Count == 0 {
			b.Fatal("implausible")
		}
	}
}

// BenchmarkTopologyEmulation measures one full Section 5.1 setup round.
func BenchmarkTopologyEmulation(b *testing.B) {
	g := geom.NewSquareGrid(4, 40)
	rng := rand.New(rand.NewSource(4))
	nw, _, err := deploy.Generate(160, g, 11, deploy.UniformRandom{}, rng, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := cost.NewLedger(cost.NewUniform(), nw.N())
		med := radio.NewMedium(nw, sim.New(), l, rand.New(rand.NewSource(5)), radio.Config{})
		if m := vtopo.New(med, g).Run(); !m.Complete {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkDeploymentGeneration measures placement plus adjacency
// construction for a mid-sized deployment.
func BenchmarkDeploymentGeneration(b *testing.B) {
	g := geom.NewSquareGrid(8, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		nw := deploy.New(640, g.Terrain, 11, deploy.UniformRandom{}, rng)
		if nw.N() != 640 {
			b.Fatal("bad deployment")
		}
	}
}

func sideName(side int) string {
	return fmt.Sprintf("%dx%d", side, side)
}
