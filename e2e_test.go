package wsnva_test

// End-to-end integration tests: the cross-engine equivalence matrix, the
// full physical stack (deploy → emulate → bind → label), and the
// wire-codec-in-the-loop run. These exercise the public seams between
// subsystems the way cmd/wsnsim composes them.

import (
	"math/rand"
	"testing"

	"wsnva/internal/binding"
	"wsnva/internal/cost"
	"wsnva/internal/deploy"
	"wsnva/internal/field"
	"wsnva/internal/geom"
	"wsnva/internal/lockstep"
	"wsnva/internal/radio"
	"wsnva/internal/regions"
	"wsnva/internal/runtime"
	"wsnva/internal/sim"
	"wsnva/internal/synth"
	"wsnva/internal/varch"
	"wsnva/internal/vtopo"
	"wsnva/internal/wire"
)

// TestThreeEngineEquivalence runs the same workloads through the DES
// machine, the lock-step engine, and the goroutine runtime, and requires
// byte-identical final summaries and identical total energy everywhere.
func TestThreeEngineEquivalence(t *testing.T) {
	for _, side := range []int{4, 8, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			g := geom.NewSquareGrid(side, float64(side))
			f := field.RandomBlobs(3, g.Terrain, float64(side)/8, float64(side)/4, rand.New(rand.NewSource(seed)))
			m := field.Threshold(f, g, 0.5, 0)
			h := varch.MustHierarchy(g)

			desLedger := cost.NewLedger(cost.NewUniform(), g.N())
			desRes, err := synth.RunOnMachine(varch.NewMachine(h, sim.New(), desLedger), m)
			if err != nil {
				t.Fatalf("side %d seed %d DES: %v", side, seed, err)
			}

			lockLedger := cost.NewLedger(cost.NewUniform(), g.N())
			lockRes, err := lockstep.New(h, lockLedger).Run(m)
			if err != nil {
				t.Fatalf("side %d seed %d lockstep: %v", side, seed, err)
			}

			rtLedger := cost.NewLedger(cost.NewUniform(), g.N())
			rtRes, err := runtime.New(h).Run(m, rtLedger, runtime.Config{Seed: seed})
			if err != nil {
				t.Fatalf("side %d seed %d runtime: %v", side, seed, err)
			}

			if !lockRes.Final.Equal(desRes.Final) || !rtRes.Final.Equal(desRes.Final) {
				t.Errorf("side %d seed %d: engines disagree on the final summary", side, seed)
			}
			if lockLedger.Metrics().Total != desLedger.Metrics().Total ||
				rtLedger.Metrics().Total != desLedger.Metrics().Total {
				t.Errorf("side %d seed %d: energies %d / %d / %d diverge",
					side, seed, desLedger.Metrics().Total, lockLedger.Metrics().Total, rtLedger.Metrics().Total)
			}
			truth := regions.Label(m)
			if desRes.Final.Count() != truth.Count {
				t.Errorf("side %d seed %d: count %d vs truth %d", side, seed, desRes.Final.Count(), truth.Count)
			}
		}
	}
}

// TestWireTransportInTheLoop forces every protocol message through the
// binary codec; the result must be identical to the in-memory run.
func TestWireTransportInTheLoop(t *testing.T) {
	g := geom.NewSquareGrid(8, 8)
	m := field.Threshold(field.RandomBlobs(4, g.Terrain, 1, 2, rand.New(rand.NewSource(44))), g, 0.5, 0)
	h := varch.MustHierarchy(g)

	ref, err := synth.RunOnMachine(varch.NewMachine(h, sim.New(), cost.NewLedger(cost.NewUniform(), g.N())), m)
	if err != nil {
		t.Fatal(err)
	}
	encoded := 0
	transport := func(gm synth.GraphMsg) (synth.GraphMsg, error) {
		buf := wire.EncodeGraphMsg(gm.Sender, gm.Level, gm.Sub)
		sender, level, sub, err := wire.DecodeGraphMsg(g, buf)
		if err != nil {
			return synth.GraphMsg{}, err
		}
		// The chargeable size the program used must match the codec's view.
		if sub.Size() != gm.Sub.Size() {
			t.Errorf("decoded size %d != original %d", sub.Size(), gm.Sub.Size())
		}
		encoded++
		return synth.GraphMsg{Sender: sender, Level: level, Sub: sub}, nil
	}
	got, err := synth.RunOnMachineWithTransport(
		varch.NewMachine(h, sim.New(), cost.NewLedger(cost.NewUniform(), g.N())), m, transport)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Final.Equal(ref.Final) {
		t.Error("wire transport changed the result")
	}
	if encoded == 0 {
		t.Error("transport was never exercised")
	}
}

// TestFullPhysicalStack drives the complete pipeline the way cmd/wsnsim
// does, across several seeds: generate a valid deployment, emulate the
// grid, elect leaders, run the application, and check the answer.
func TestFullPhysicalStack(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		grid := geom.NewSquareGrid(4, 40)
		rng := rand.New(rand.NewSource(seed))
		nw, _, err := deploy.Generate(160, grid, grid.CellSide()*1.25, deploy.UniformRandom{}, rng, 100)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		physLedger := cost.NewLedger(cost.NewUniform(), nw.N())
		med := radio.NewMedium(nw, sim.New(), physLedger, rand.New(rand.NewSource(seed+1)), radio.Config{})
		proto := vtopo.New(med, grid)
		if em := proto.Run(); !em.Complete {
			t.Fatalf("seed %d: emulation incomplete", seed)
		}
		bnd, _, err := binding.Bind(med, grid, binding.MinDistance{Network: nw, Grid: grid})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(bnd.Leaders) != grid.N() {
			t.Fatalf("seed %d: %d leaders", seed, len(bnd.Leaders))
		}
		// Message routing over the emulated topology works between every
		// pair of opposite corners.
		corner := bnd.Leaders[geom.Coord{Col: 0, Row: 0}]
		if _, err := proto.RouteCells(corner, geom.Coord{Col: 3, Row: 3}, 4); err != nil {
			t.Fatalf("seed %d: routing failed: %v", seed, err)
		}
		// Application round on the virtual architecture.
		m := field.Threshold(field.RandomBlobs(2, grid.Terrain, 6, 10, rand.New(rand.NewSource(seed+2))), grid, 0.5, 0)
		h := varch.MustHierarchy(grid)
		res, err := synth.RunOnMachine(varch.NewMachine(h, sim.New(), cost.NewLedger(cost.NewUniform(), grid.N())), m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Final.Count() != regions.Label(m).Count {
			t.Errorf("seed %d: wrong region count", seed)
		}
	}
}

// TestStorePipelineAfterRounds exercises gathering plus querying across
// epochs of a drifting field, the examples/contaminant composition.
func TestStorePipelineAfterRounds(t *testing.T) {
	g := geom.NewSquareGrid(8, 80)
	h := varch.MustHierarchy(g)
	plume := field.Blobs{Items: []field.Blob{
		{Center: geom.Point{X: 20, Y: 40}, Sigma: 12, Peak: 1, Drift: geom.Point{X: 0.05}},
	}}
	for epoch := 0; epoch < 4; epoch++ {
		m := field.Threshold(plume, g, 0.5, int64(epoch*200))
		res, err := synth.RunOnMachine(varch.NewMachine(h, sim.New(), cost.NewLedger(cost.NewUniform(), g.N())), m)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		truth := regions.Label(m)
		if res.Final.Count() != truth.Count {
			t.Errorf("epoch %d: count %d vs %d", epoch, res.Final.Count(), truth.Count)
		}
	}
}
