# Development entry points for the wsnva reproduction.

GO ?= go

.PHONY: all check build vet test test-short race race-core race-deploy race-shard-faults race-churn race-serve bench bench-json bench-diff bench-serve bench-deploy soak cover tables csv report fuzz examples clean

all: build vet test

# The full pre-merge gate: vet, build, an uncached race pass over the
# concurrency-critical packages, a hazard-heavy multi-worker shard run
# under the race detector, a churned multi-worker shard run plus the
# churn differential suite under the race detector, the mission server
# under multi-tenant load with the race detector, the whole test suite
# under the race detector, one quick benchmark iteration to catch
# allocation or wall-time blowups, a battery-depletion soak, and the
# observability coverage floor before they land.
check: vet build race-core race-deploy race-shard-faults race-churn race-serve race bench soak cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# The event kernel, the radio medium, the worker pool, and the sharded
# parallel kernel are where a data race would silently break
# determinism, so they get a fresh (-count=1, never cached) race pass
# on every check. The shard package includes a dedicated multi-worker
# run (TestEngineRaceSmokeMultiWorker) exercising the window-barrier
# inbox handoff under 2 and 4 workers.
race-core:
	$(GO) test -race -count=1 ./internal/sim/ ./internal/radio/ ./internal/parallel/ ./internal/shard/

# The deployment pipeline under the race detector: the parallel two-pass
# CSR neighbor construction over bucket rows, the speculative
# GenerateSeeded waves with per-slot scratches, and the differential
# tests pinning both to their sequential twins — all under real
# goroutine interleaving.
race-deploy:
	$(GO) test -race -count=1 ./internal/deploy/

# The fault plane under the race detector: a multi-worker sharded run
# with the lossy channel, a crash schedule, and battery depletion all
# armed (TestShardFaultsRaceSmoke), plus the hazard differential
# property suite. The shared StreamChannel, the per-shard banks, and
# the dying-gasp paths all execute under real goroutine interleaving.
race-shard-faults:
	$(GO) test -race -count=1 -run 'TestShardFaultsRaceSmoke|TestQuickDifferential' ./internal/shard/

# The churn plane under the race detector: an 8-shard 4-worker run with
# a Poisson sleep/wake schedule armed (TestShardChurnRaceSmoke), the
# deterministic churn differentials, and the emulation-side churn
# mission with its bounded-recovery trace checks.
race-churn:
	$(GO) test -race -count=1 -run 'TestShardChurnRaceSmoke|TestChurn' ./internal/shard/ ./internal/emul/

# The mission server under the race detector: N concurrent tenants
# hammering the scheduler with admission caps asserted (no tenant
# starves, queue bound respected), concurrent identical submissions
# coalescing onto one flight, and the full e2e lifecycle with its
# streaming path.
race-serve:
	$(GO) test -race -count=1 -run 'TestRace|TestE2E|TestQuickServerMatchesDirect' ./internal/serve/

# Micro-benchmarks only (-run=^$$ skips the unit tests), with allocation
# counts; short benchtime keeps this a quick regression pass. Compare the
# whole-experiment numbers against the committed BENCH_4.json baseline.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ .

# Depletion soak: a widened randomized-but-seeded battery sweep asserting
# the closed-loop invariants (dead nodes never charged, ledger/bank
# agreement, depletion counts consistent). SOAK_SEEDS widens the batch
# beyond the 6 seeds the plain test suite runs.
soak:
	SOAK_SEEDS=40 $(GO) test -run TestDepletionSoak -count=1 ./internal/experiments/

# Coverage floors: the trace/metrics/check packages are the repo's
# verification substrate and are gated at 75%; the sharded kernel is the
# differential-conformance tentpole and carries its own 80% floor.
COVER_PKGS = ./internal/trace/ ./internal/trace/check/ ./internal/metrics/
COVER_FLOOR = 75.0
SHARD_COVER_FLOOR = 80.0

cover:
	@$(GO) test -cover $(COVER_PKGS) | awk -v floor=$(COVER_FLOOR) '\
	{ print } \
	/coverage:/ { pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
	  if (pct + 0 < floor) { print "FAIL: coverage below " floor "% floor"; bad = 1 } } \
	END { exit bad }'
	@$(GO) test -cover ./internal/shard/ | awk -v floor=$(SHARD_COVER_FLOOR) '\
	{ print } \
	/coverage:/ { pct = $$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
	  if (pct + 0 < floor) { print "FAIL: shard coverage below " floor "% floor"; bad = 1 } } \
	END { exit bad }'

# Refresh the committed per-experiment wall-time/alloc/heap-peak baseline.
# -repeat 3 records min-of-3, which keeps scheduler noise on busy or
# single-core hosts out of the committed numbers.
bench-json:
	$(GO) run ./cmd/benchtab -parallel 1 -repeat 3 -bench-json BENCH_4.json > /dev/null

# Perf gate: re-measure every experiment into BENCH_5.json and diff it
# against the committed BENCH_4.json baseline; fails on any experiment
# regressing more than 10% on wall time or mallocs. The compare also
# refuses (exit 2) when the two files were measured under different
# worker/GOMAXPROCS/shard conditions, unless -force is given.
bench-diff:
	$(GO) run ./cmd/benchtab -parallel 1 -repeat 3 -bench-json BENCH_5.json > /dev/null
	$(GO) run ./cmd/benchtab -compare -tolerance 10 BENCH_4.json BENCH_5.json

# Deployment-pipeline perf gate: re-measure the E26 generation sweep
# (full tiers, up to a million nodes) into a fresh report and diff its
# E26 record against the committed BENCH_4.json baseline. Other
# experiments show as "gone" in the table; only E26 is gated. The wider
# tolerance absorbs wall jitter on big single-shot builds.
bench-deploy:
	$(GO) run ./cmd/benchtab -parallel 1 -repeat 2 -only E26 -bench-json BENCH_DEPLOY.json > /dev/null
	$(GO) run ./cmd/benchtab -compare -tolerance 25 BENCH_4.json BENCH_DEPLOY.json
	rm -f BENCH_DEPLOY.json

# Mission-server load test: cold vs cached waves against an in-process
# server over real HTTP, refreshing the committed BENCH_3.json latency
# baseline (p50/p99/mean per phase, benchtab -compare compatible).
bench-serve:
	$(GO) run ./cmd/wsnserve -selftest -bench-json BENCH_3.json

# Regenerate every experiment table (E1-E21, A1-A3).
tables:
	$(GO) run ./cmd/benchtab

# Same, writing one CSV per experiment into results/.
csv:
	$(GO) run ./cmd/benchtab -out results

# Self-contained markdown report of every experiment.
report:
	$(GO) run ./cmd/report -o results/report.md

fuzz:
	$(GO) test -fuzz FuzzDecodeSummary -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzDecodeGraphMsg -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzMediumConservation -fuzztime 30s ./internal/radio/
	$(GO) test -fuzz FuzzCSRNeighbors -fuzztime 30s ./internal/deploy/
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/trace/
	$(GO) test -fuzz FuzzRun -fuzztime 30s ./internal/trace/check/
	$(GO) test -fuzz '^FuzzWindowBoundary$$' -fuzztime 30s ./internal/shard/
	$(GO) test -fuzz FuzzLossyWindowBoundary -fuzztime 30s ./internal/shard/
	$(GO) test -fuzz FuzzMidRunDeath -fuzztime 30s ./internal/shard/
	$(GO) test -fuzz FuzzChurnRepair -fuzztime 30s ./internal/emul/
	$(GO) test -fuzz FuzzMissionSpec -fuzztime 30s ./internal/serve/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/microclimate
	$(GO) run ./examples/contaminant
	$(GO) run ./examples/retasking
	$(GO) run ./examples/wildfire
	$(GO) run ./examples/clustered
	$(GO) run ./examples/tracking

clean:
	rm -rf results
